//===- tests/TwppPipelineTest.cpp - TWPP conversion & full pipeline --------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Twpp.h"

#include "TestTraces.h"
#include "wpp/Sizes.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

TEST(TwppTraceTest, PaperSection2Example) {
  // WPP trace 1.2.2.2.2.2.6 -> {1 -> {1}, 2 -> {2..6}, 6 -> {7}} ->
  // compacted {1 -> {-1}, 2 -> {2:-6}, 6 -> {-7}}.
  std::vector<BlockId> Sequence = {1, 2, 2, 2, 2, 2, 6};
  TwppTrace Trace = twppFromBlockSequence(Sequence);
  EXPECT_EQ(Trace.Length, 7u);
  ASSERT_EQ(Trace.Blocks.size(), 3u);
  EXPECT_EQ(Trace.Blocks[0].first, 1u);
  EXPECT_EQ(Trace.Blocks[0].second.encodeSigned(),
            (std::vector<int64_t>{-1}));
  EXPECT_EQ(Trace.Blocks[1].first, 2u);
  EXPECT_EQ(Trace.Blocks[1].second.encodeSigned(),
            (std::vector<int64_t>{2, -6}));
  EXPECT_EQ(Trace.Blocks[2].first, 6u);
  EXPECT_EQ(Trace.Blocks[2].second.encodeSigned(),
            (std::vector<int64_t>{-7}));

  std::vector<BlockId> Back;
  ASSERT_TRUE(blockSequenceFromTwpp(Trace, Back));
  EXPECT_EQ(Back, Sequence);
}

TEST(TwppTraceTest, TimestampsOfLookup) {
  TwppTrace Trace = twppFromBlockSequence({5, 9, 5, 9, 5});
  ASSERT_NE(Trace.timestampsOf(5), nullptr);
  EXPECT_EQ(Trace.timestampsOf(5)->toVector(),
            (std::vector<Timestamp>{1, 3, 5}));
  EXPECT_EQ(Trace.timestampsOf(7), nullptr);
}

TEST(TwppTraceTest, InverseRejectsInconsistentTraces) {
  TwppTrace Trace;
  Trace.Length = 3;
  Trace.Blocks.emplace_back(1, TimestampSet::fromSorted({1, 2}));
  // Timestamp 3 missing.
  std::vector<BlockId> Back;
  EXPECT_FALSE(blockSequenceFromTwpp(Trace, Back));

  // Overlapping timestamps.
  Trace.Blocks.emplace_back(2, TimestampSet::fromSorted({2, 3}));
  EXPECT_FALSE(blockSequenceFromTwpp(Trace, Back));
}

TEST(PipelineTest, PaperFigure5TupleSharing) {
  // After DBB compaction, f's two unique traces share one trace string
  // (1.2.2.2.10) with two dictionaries (paper Figure 5).
  RawTrace Trace = fixtures::figure1Trace();
  DbbWpp Dbb = applyDbbCompaction(partitionWpp(Trace));

  const DbbFunctionTable &F = Dbb.Functions[1];
  ASSERT_EQ(F.Traces.size(), 2u);
  EXPECT_EQ(F.TraceStrings.size(), 1u);
  EXPECT_EQ(F.Dictionaries.size(), 2u);
  EXPECT_EQ(F.TraceStrings[0], (std::vector<BlockId>{1, 2, 2, 2, 10}));
  EXPECT_EQ(F.Traces[0].first, F.Traces[1].first);   // shared string
  EXPECT_NE(F.Traces[0].second, F.Traces[1].second); // distinct dicts
}

TEST(PipelineTest, FullPipelineIsLosslessOnFigure1) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  EXPECT_EQ(reconstructRawTrace(Compacted), Trace);
}

TEST(PipelineTest, ExpandFunctionTracesMatchesPartition) {
  RawTrace Trace = fixtures::figure1Trace();
  PartitionedWpp Partitioned = partitionWpp(Trace);
  TwppWpp Compacted = compactWpp(Trace);

  for (size_t F = 0; F < Compacted.Functions.size(); ++F) {
    FunctionPathTraces Expanded =
        expandFunctionTraces(Compacted.Functions[F]);
    EXPECT_EQ(Expanded.Traces, Partitioned.Functions[F].UniqueTraces);
    EXPECT_EQ(Expanded.UseCounts, Partitioned.Functions[F].UseCounts);
    EXPECT_EQ(Expanded.CallCount, Partitioned.Functions[F].CallCount);
  }
}

TEST(PipelineTest, StageInversesCompose) {
  RawTrace Trace = fixtures::randomTrace(4242);
  PartitionedWpp Partitioned = partitionWpp(Trace);
  DbbWpp Dbb = applyDbbCompaction(Partitioned);
  TwppWpp Twpp = convertToTwpp(Dbb);

  DbbWpp DbbBack = twppToDbb(Twpp);
  EXPECT_EQ(DbbBack, Dbb);
  PartitionedWpp PartitionedBack = dbbToPartitioned(Dbb);
  EXPECT_EQ(PartitionedBack.Dcg, Partitioned.Dcg);
  for (size_t F = 0; F < Partitioned.Functions.size(); ++F) {
    EXPECT_EQ(PartitionedBack.Functions[F].UniqueTraces,
              Partitioned.Functions[F].UniqueTraces);
    EXPECT_EQ(PartitionedBack.Functions[F].UseCounts,
              Partitioned.Functions[F].UseCounts);
  }
}

TEST(SizesTest, StagesShrinkMonotonically) {
  RawTrace Trace = fixtures::figure1Trace();
  PartitionedWpp Partitioned = partitionWpp(Trace);
  DbbWpp Dbb = applyDbbCompaction(Partitioned);
  TwppWpp Twpp = convertToTwpp(Dbb);
  StageSizes Sizes = measureStages(Partitioned, Dbb, Twpp);

  EXPECT_GT(Sizes.OwppTraceBytes, Sizes.DedupedTraceBytes);
  EXPECT_GT(Sizes.DedupedTraceBytes, Sizes.DbbTraceBytes);
  EXPECT_GT(Sizes.DictionaryBytes, 0u);
  EXPECT_GT(Sizes.TwppTraceBytes, 0u);
  EXPECT_GT(Sizes.CompactedDcgBytes, 0u);
}

TEST(SizesTest, OwppSplitsAccountEverything) {
  RawTrace Trace = fixtures::figure1Trace();
  PartitionedWpp Partitioned = partitionWpp(Trace);
  OwppSizes Owpp = measureOwpp(Partitioned);
  EXPECT_GT(Owpp.DcgBytes, 0u);
  // 6 calls x 17 blocks, one byte per small block id + length prefixes.
  EXPECT_GT(Owpp.TraceBytes, 100u);
  EXPECT_EQ(Owpp.totalBytes(), Owpp.DcgBytes + Owpp.TraceBytes);
}

/// Property sweep: the full pipeline is lossless on random traces.
class PipelineRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineRoundTrip, RandomTraces) {
  RawTrace Trace = fixtures::randomTrace(GetParam(), 6, 6000);
  TwppWpp Compacted = compactWpp(Trace);
  EXPECT_EQ(reconstructRawTrace(Compacted), Trace);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineRoundTrip,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28,
                                           29, 30, 31, 32));

} // namespace
