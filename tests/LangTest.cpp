//===- tests/LangTest.cpp - lexer / parser / lowering ----------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Lower.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

TEST(LexerTest, TokenizesOperatorsAndKeywords) {
  std::vector<Token> Tokens;
  std::string Error;
  ASSERT_TRUE(tokenize("fn f() { let x = 1 <= 2 && 3 != 4; } // note",
                       Tokens, Error))
      << Error;
  std::vector<TokenKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  EXPECT_EQ(Kinds,
            (std::vector<TokenKind>{
                TokenKind::KwFn, TokenKind::Ident, TokenKind::LParen,
                TokenKind::RParen, TokenKind::LBrace, TokenKind::KwLet,
                TokenKind::Ident, TokenKind::Assign, TokenKind::Integer,
                TokenKind::Le, TokenKind::Integer, TokenKind::AndAnd,
                TokenKind::Integer, TokenKind::NotEq, TokenKind::Integer,
                TokenKind::Semi, TokenKind::RBrace, TokenKind::Eof}));
}

TEST(LexerTest, TracksLineNumbers) {
  std::vector<Token> Tokens;
  std::string Error;
  ASSERT_TRUE(tokenize("fn f()\n{\n  read x;\n}", Tokens, Error));
  // 'read' starts line 3.
  for (const Token &T : Tokens) {
    if (T.Kind == TokenKind::KwRead) {
      EXPECT_EQ(T.Line, 3u);
    }
  }
}

TEST(LexerTest, RejectsBadCharacters) {
  std::vector<Token> Tokens;
  std::string Error;
  EXPECT_FALSE(tokenize("fn f() { x = 1 @ 2; }", Tokens, Error));
  EXPECT_NE(Error.find("unexpected character"), std::string::npos);
  EXPECT_FALSE(tokenize("x & y", Tokens, Error));
}

TEST(ParserTest, ParsesControlFlow) {
  AstProgram Program;
  std::string Error;
  ASSERT_TRUE(parseProgram("fn main() {"
                           "  read n;"
                           "  while (n > 0) {"
                           "    if (n % 2 == 0) { print n; } else { n = n - 1; }"
                           "    n = n - 1;"
                           "  }"
                           "}",
                           Program, Error))
      << Error;
  ASSERT_EQ(Program.Functions.size(), 1u);
  const AstBlock &Body = Program.Functions[0].Body;
  ASSERT_EQ(Body.size(), 2u);
  EXPECT_EQ(Body[1]->NodeKind, AstStmt::Kind::While);
  ASSERT_EQ(Body[1]->Then.size(), 2u);
  EXPECT_EQ(Body[1]->Then[0]->NodeKind, AstStmt::Kind::If);
}

TEST(ParserTest, ReportsErrors) {
  AstProgram Program;
  std::string Error;
  EXPECT_FALSE(parseProgram("fn main() { x = ; }", Program, Error));
  EXPECT_NE(Error.find("expected expression"), std::string::npos);
  EXPECT_FALSE(parseProgram("fn main() { if x { } }", Program, Error));
  EXPECT_FALSE(parseProgram("", Program, Error));
  EXPECT_FALSE(parseProgram("fn main() {", Program, Error));
}

TEST(ParserTest, PrecedenceNestsCorrectly) {
  AstProgram Program;
  std::string Error;
  ASSERT_TRUE(
      parseProgram("fn f() { x = 1 + 2 * 3; }", Program, Error));
  const AstStmt &S = *Program.Functions[0].Body[0];
  // Root is '+', right child is '*'.
  ASSERT_EQ(S.Value->NodeKind, AstExpr::Kind::Binary);
  EXPECT_EQ(S.Value->Op, "+");
  EXPECT_EQ(S.Value->Rhs->Op, "*");
}

TEST(LowerTest, WhileLoopShape) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() {"
                             "  read n;"
                             "  while (n > 0) { n = n - 1; }"
                             "  print n;"
                             "}",
                             M, Error))
      << Error;
  const Function &Main = M.Functions[M.MainId];
  // entry, header, body, exit.
  ASSERT_EQ(Main.blockCount(), 4u);
  const BasicBlock &Entry = Main.block(1);
  EXPECT_EQ(Entry.Term, BasicBlock::Terminator::Jump);
  EXPECT_EQ(Entry.TrueSucc, 2u);
  const BasicBlock &Header = Main.block(2);
  EXPECT_EQ(Header.Term, BasicBlock::Terminator::Branch);
  EXPECT_EQ(Header.TrueSucc, 3u);  // body
  EXPECT_EQ(Header.FalseSucc, 4u); // exit
  const BasicBlock &Body = Main.block(3);
  EXPECT_EQ(Body.Term, BasicBlock::Terminator::Jump);
  EXPECT_EQ(Body.TrueSucc, 2u); // back edge
}

TEST(LowerTest, IfElseJoins) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() {"
                             "  read x;"
                             "  if (x < 0) { x = 0 - x; } else { x = x + 1; }"
                             "  print x;"
                             "}",
                             M, Error))
      << Error;
  const Function &Main = M.Functions[M.MainId];
  // entry, then, else, join.
  ASSERT_EQ(Main.blockCount(), 4u);
  EXPECT_EQ(Main.block(1).Term, BasicBlock::Terminator::Branch);
  EXPECT_EQ(Main.block(2).TrueSucc, 4u);
  EXPECT_EQ(Main.block(3).TrueSucc, 4u);
}

TEST(LowerTest, CallResolutionAndErrors) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn helper(a, b) { return a + b; }"
                             "fn main() { x = call helper(1, 2); print x; }",
                             M, Error))
      << Error;
  EXPECT_EQ(M.Functions.size(), 2u);
  EXPECT_EQ(M.MainId, 1u);
  EXPECT_NE(M.findFunction("helper"), nullptr);

  EXPECT_FALSE(compileProgram("fn main() { call nosuch(); }", M, Error));
  EXPECT_NE(Error.find("undefined function"), std::string::npos);
  EXPECT_FALSE(compileProgram("fn f(a) { return a; }"
                              "fn main() { x = call f(); }",
                              M, Error));
  EXPECT_NE(Error.find("wrong argument count"), std::string::npos);
  EXPECT_FALSE(compileProgram("fn f() {} fn f() {}", M, Error));
  EXPECT_NE(Error.find("duplicate function"), std::string::npos);
}

TEST(LowerTest, BreakAndContinueLowerToJumps) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() {"
                             "  i = 0;"
                             "  while (i < 10) {"
                             "    i = i + 1;"
                             "    if (i == 5) { break; }"
                             "    if (i % 2 == 0) { continue; }"
                             "    print i;"
                             "  }"
                             "  print i;"
                             "}",
                             M, Error))
      << Error;
  EXPECT_TRUE(verifyModule(M));
}

TEST(LowerTest, BreakOutsideLoopRejected) {
  Module M;
  std::string Error;
  EXPECT_FALSE(compileProgram("fn main() { break; }", M, Error));
  EXPECT_NE(Error.find("'break' outside"), std::string::npos);
  EXPECT_FALSE(compileProgram("fn main() { continue; }", M, Error));
  EXPECT_NE(Error.find("'continue' outside"), std::string::npos);
  // Break binds to the innermost loop; outside its body it is an error.
  EXPECT_FALSE(compileProgram("fn main() {"
                              "  while (1 < 0) { }"
                              "  break;"
                              "}",
                              M, Error));
}

TEST(LowerTest, UnreachableCodeIsRejected) {
  Module M;
  std::string Error;
  EXPECT_FALSE(compileProgram("fn main() { return; print 1; }", M, Error));
  EXPECT_NE(Error.find("unreachable"), std::string::npos);
}

TEST(LowerTest, BothArmsReturn) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn sign(x) {"
                             "  if (x < 0) { return 0 - 1; }"
                             "  else { return 1; }"
                             "}"
                             "fn main() { s = call sign(0 - 5); print s; }",
                             M, Error))
      << Error;
  EXPECT_TRUE(verifyModule(M));
}

} // namespace
