//===- tests/TimestampSetTest.cpp - series codec & set ops -----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/TimestampSet.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace twpp;

namespace {

TEST(TimestampSetTest, PaperExampleCompactsToSeries) {
  // Paper Section 2: {1 -> {1}, 2 -> {2,3,4,5,6}, 6 -> {7}} compacts to
  // {1 -> {-1}, 2 -> {2:-6}, 6 -> {-7}}.
  TimestampSet Block2 = TimestampSet::fromSorted({2, 3, 4, 5, 6});
  EXPECT_EQ(Block2.encodeSigned(), (std::vector<int64_t>{2, -6}));
  TimestampSet Block1 = TimestampSet::fromSorted({1});
  EXPECT_EQ(Block1.encodeSigned(), (std::vector<int64_t>{-1}));
  TimestampSet Block6 = TimestampSet::fromSorted({7});
  EXPECT_EQ(Block6.encodeSigned(), (std::vector<int64_t>{-7}));
}

TEST(TimestampSetTest, SteppedSeriesUsesThreeValues) {
  TimestampSet Set = TimestampSet::fromSorted({2, 4, 6, 8});
  EXPECT_EQ(Set.encodeSigned(), (std::vector<int64_t>{2, 8, -2}));
  EXPECT_EQ(Set.encodedValueCount(), 3u);
}

TEST(TimestampSetTest, TwoElementOddStridePrefersSingletons) {
  // {3, 10}: l:h:s would cost 3 ints; two singletons cost 2.
  TimestampSet Set = TimestampSet::fromSorted({3, 10});
  EXPECT_EQ(Set.encodeSigned(), (std::vector<int64_t>{-3, -10}));
}

TEST(TimestampSetTest, BasicAccessors) {
  TimestampSet Set = TimestampSet::fromSorted({1, 5, 9, 13, 20});
  EXPECT_EQ(Set.count(), 5u);
  EXPECT_EQ(Set.min(), 1u);
  EXPECT_EQ(Set.max(), 20u);
  EXPECT_TRUE(Set.contains(9));
  EXPECT_FALSE(Set.contains(10));
  EXPECT_EQ(Set.toVector(), (std::vector<Timestamp>{1, 5, 9, 13, 20}));
}

TEST(TimestampSetTest, ShiftMovesWholeRuns) {
  // The paper's traversal example: (2:20:2) shifted to (1:19:2)/(3:21:2).
  TimestampSet Set = TimestampSet::fromRun(2, 20, 2);
  TimestampSet Back = Set.shifted(-1);
  ASSERT_EQ(Back.runs().size(), 1u);
  EXPECT_EQ(Back.runs()[0], (SeriesRun{1, 19, 2}));
  TimestampSet Fwd = Set.shifted(+1);
  ASSERT_EQ(Fwd.runs().size(), 1u);
  EXPECT_EQ(Fwd.runs()[0], (SeriesRun{3, 21, 2}));
}

TEST(TimestampSetTest, ShiftDropsNonPositives) {
  TimestampSet Set = TimestampSet::fromSorted({1, 2, 3});
  TimestampSet Shifted = Set.shifted(-2);
  EXPECT_EQ(Shifted.toVector(), (std::vector<Timestamp>{1}));
  EXPECT_TRUE(Set.shifted(-5).empty());
}

TEST(TimestampSetTest, ShiftPartialRunWithStride) {
  TimestampSet Set = TimestampSet::fromRun(3, 11, 4); // {3, 7, 11}
  TimestampSet Shifted = Set.shifted(-4);             // {3, 7} after drop
  EXPECT_EQ(Shifted.toVector(), (std::vector<Timestamp>{3, 7}));
}

TEST(TimestampSetTest, SetOperations) {
  TimestampSet A = TimestampSet::fromSorted({1, 2, 3, 4, 5, 6});
  TimestampSet B = TimestampSet::fromSorted({2, 4, 6, 8});
  EXPECT_EQ(A.intersect(B).toVector(), (std::vector<Timestamp>{2, 4, 6}));
  EXPECT_EQ(A.subtract(B).toVector(), (std::vector<Timestamp>{1, 3, 5}));
  EXPECT_EQ(A.unite(B).toVector(),
            (std::vector<Timestamp>{1, 2, 3, 4, 5, 6, 8}));
  EXPECT_TRUE(A.intersect(TimestampSet()).empty());
  EXPECT_EQ(A.subtract(TimestampSet()).toVector(), A.toVector());
}

TEST(TimestampSetTest, DecodeRejectsMalformedStreams) {
  TimestampSet Out;
  // Dangling positive value.
  EXPECT_FALSE(TimestampSet::decodeSigned({5}, Out));
  // Range with h <= l.
  EXPECT_FALSE(TimestampSet::decodeSigned({5, -5}, Out));
  // Step not dividing the span.
  EXPECT_FALSE(TimestampSet::decodeSigned({2, 7, -2}, Out));
  // Zero is not a valid timestamp.
  EXPECT_FALSE(TimestampSet::decodeSigned({0}, Out));
  // Three positives in a row.
  EXPECT_FALSE(TimestampSet::decodeSigned({2, 8, 2}, Out));
}

TEST(TimestampSetTest, EmptySetEncodesEmpty) {
  TimestampSet Set;
  EXPECT_TRUE(Set.encodeSigned().empty());
  TimestampSet Out;
  EXPECT_TRUE(TimestampSet::decodeSigned({}, Out));
  EXPECT_TRUE(Out.empty());
}

/// Property sweep: random strictly-increasing lists round trip through
/// the signed encoding, and set operations agree with std::set oracles.
class TimestampSetProperty : public ::testing::TestWithParam<uint64_t> {};

std::vector<Timestamp> randomSortedList(Rng &R, size_t MaxLength) {
  std::vector<Timestamp> Out;
  Timestamp T = 0;
  size_t Length = R.nextBelow(MaxLength + 1);
  for (size_t I = 0; I < Length; ++I) {
    // Mix of dense runs (stride 1 / constant stride) and jumps.
    uint64_t Roll = R.nextBelow(10);
    Timestamp Step = Roll < 5 ? 1 : (Roll < 8 ? 3 : 1 + R.nextBelow(50));
    T += Step;
    Out.push_back(T);
  }
  return Out;
}

TEST_P(TimestampSetProperty, EncodeDecodeRoundTrip) {
  Rng R(GetParam());
  for (int Iter = 0; Iter < 50; ++Iter) {
    std::vector<Timestamp> List = randomSortedList(R, 200);
    TimestampSet Set = TimestampSet::fromSorted(List);
    EXPECT_EQ(Set.toVector(), List);
    EXPECT_EQ(Set.count(), List.size());
    TimestampSet Back;
    ASSERT_TRUE(TimestampSet::decodeSigned(Set.encodeSigned(), Back));
    EXPECT_EQ(Back.toVector(), List);
  }
}

TEST_P(TimestampSetProperty, SetOpsMatchOracle) {
  Rng R(GetParam() ^ 0xABCD);
  for (int Iter = 0; Iter < 30; ++Iter) {
    std::vector<Timestamp> ListA = randomSortedList(R, 120);
    std::vector<Timestamp> ListB = randomSortedList(R, 120);
    TimestampSet A = TimestampSet::fromSorted(ListA);
    TimestampSet B = TimestampSet::fromSorted(ListB);

    std::set<Timestamp> OracleA(ListA.begin(), ListA.end());
    std::set<Timestamp> OracleB(ListB.begin(), ListB.end());

    std::vector<Timestamp> Meet, Diff, Join;
    std::set_intersection(OracleA.begin(), OracleA.end(), OracleB.begin(),
                          OracleB.end(), std::back_inserter(Meet));
    std::set_difference(OracleA.begin(), OracleA.end(), OracleB.begin(),
                        OracleB.end(), std::back_inserter(Diff));
    std::set_union(OracleA.begin(), OracleA.end(), OracleB.begin(),
                   OracleB.end(), std::back_inserter(Join));

    EXPECT_EQ(A.intersect(B).toVector(), Meet);
    EXPECT_EQ(A.subtract(B).toVector(), Diff);
    EXPECT_EQ(A.unite(B).toVector(), Join);

    // Shift oracle.
    int64_t Delta = static_cast<int64_t>(R.nextBelow(7)) - 3;
    std::vector<Timestamp> ShiftOracle;
    for (Timestamp T : ListA) {
      int64_t V = static_cast<int64_t>(T) + Delta;
      if (V > 0)
        ShiftOracle.push_back(static_cast<Timestamp>(V));
    }
    EXPECT_EQ(A.shifted(Delta).toVector(), ShiftOracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimestampSetProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(TimestampSetEdge, SingleElementSeries) {
  TimestampSet Set = TimestampSet::fromSorted({42});
  ASSERT_EQ(Set.runs().size(), 1u);
  EXPECT_EQ(Set.runs()[0], (SeriesRun{42, 42, 1}));
  EXPECT_EQ(Set.encodeSigned(), (std::vector<int64_t>{-42}));
  EXPECT_EQ(Set.count(), 1u);
  EXPECT_EQ(Set.min(), 42u);
  EXPECT_EQ(Set.max(), 42u);

  // A degenerate fromRun must normalize the step so equal sets compare
  // equal regardless of how they were built.
  EXPECT_EQ(TimestampSet::fromRun(7, 7, 5), TimestampSet::fromSorted({7}));
}

TEST(TimestampSetEdge, StrideOverflowNearInt32Max) {
  // Strides close to INT32_MAX: the greedy packer must fold
  // {1, 2^30, 2^31-1} (stride 0x3FFFFFFF twice) into one run, and the
  // signed codec must carry it without overflowing.
  const Timestamp Mid = 0x40000000u, Top = 0x7FFFFFFFu;
  TimestampSet Set = TimestampSet::fromSorted({1, Mid, Top});
  ASSERT_EQ(Set.runs().size(), 1u);
  EXPECT_EQ(Set.runs()[0], (SeriesRun{1, Top, 0x3FFFFFFFu}));
  std::vector<int64_t> Encoded = Set.encodeSigned();
  EXPECT_EQ(Encoded, (std::vector<int64_t>{1, Top, -0x3FFFFFFF}));
  TimestampSet Back;
  ASSERT_TRUE(TimestampSet::decodeSigned(Encoded, Back));
  EXPECT_EQ(Back, Set);
  EXPECT_EQ(Back.toVector(), (std::vector<Timestamp>{1, Mid, Top}));
}

TEST(TimestampSetEdge, TwoElementHugeStridePrefersSingletons) {
  // The 2-element rule must hold at extreme strides too: {1, 2^31-1}
  // costs 2 ints as singletons, 3 as a run.
  TimestampSet Set = TimestampSet::fromSorted({1, 0x7FFFFFFFu});
  ASSERT_EQ(Set.runs().size(), 2u);
  EXPECT_EQ(Set.encodeSigned(),
            (std::vector<int64_t>{-1, -0x7FFFFFFF}));
  TimestampSet Back;
  ASSERT_TRUE(TimestampSet::decodeSigned(Set.encodeSigned(), Back));
  EXPECT_EQ(Back, Set);
}

TEST(TimestampSetEdge, TimestampsAboveInt32Max) {
  // Timestamps are uint32; values past INT32_MAX must survive the signed
  // int64 codec (the sign bit delimits entries, it cannot eat value bits).
  const Timestamp Hi = 0xFFFFFFFFu;
  TimestampSet Singleton = TimestampSet::fromSorted({Hi});
  EXPECT_EQ(Singleton.encodeSigned(),
            (std::vector<int64_t>{-static_cast<int64_t>(Hi)}));
  TimestampSet Back;
  ASSERT_TRUE(TimestampSet::decodeSigned(Singleton.encodeSigned(), Back));
  EXPECT_EQ(Back.toVector(), (std::vector<Timestamp>{Hi}));

  // A stepped run ending at the uint32 ceiling.
  TimestampSet Run = TimestampSet::fromSorted({Hi - 4, Hi - 2, Hi});
  ASSERT_EQ(Run.runs().size(), 1u);
  EXPECT_EQ(Run.runs()[0], (SeriesRun{Hi - 4, Hi, 2}));
  ASSERT_TRUE(TimestampSet::decodeSigned(Run.encodeSigned(), Back));
  EXPECT_EQ(Back.toVector(), (std::vector<Timestamp>{Hi - 4, Hi - 2, Hi}));
}

TEST(TimestampSetEdge, SignEncodedEntryBoundaries) {
  // Mixed entry kinds back to back: singleton, step-1 range, stepped run.
  // Every entry ends on its only negative value, so the stream is
  // unambiguous without separators.
  std::vector<Timestamp> List = {5, 10, 11, 12, 13, 20, 23, 26};
  TimestampSet Set = TimestampSet::fromSorted(List);
  std::vector<int64_t> Encoded = Set.encodeSigned();
  EXPECT_EQ(Encoded, (std::vector<int64_t>{-5, 10, -13, 20, 26, -3}));
  EXPECT_EQ(Set.encodedValueCount(), Encoded.size());
  int Negatives = 0;
  for (int64_t Value : Encoded)
    Negatives += Value < 0;
  EXPECT_EQ(static_cast<size_t>(Negatives), Set.runs().size());
  TimestampSet Back;
  ASSERT_TRUE(TimestampSet::decodeSigned(Encoded, Back));
  EXPECT_EQ(Back.toVector(), List);
}

TEST(TimestampSetEdge, DecodeBoundaryValidation) {
  TimestampSet Out;
  // Step-1 range collapsing to a point must be rejected (a singleton
  // encodes it); so must an inverted range.
  EXPECT_FALSE(TimestampSet::decodeSigned({1, -1}, Out));
  EXPECT_FALSE(TimestampSet::decodeSigned({5, -3}, Out));
  // Truncated stepped entry: positive pair with no step.
  EXPECT_FALSE(TimestampSet::decodeSigned({2, 8}, Out));
  // Valid adjacent entries that share boundary values must decode.
  ASSERT_TRUE(TimestampSet::decodeSigned({-1, 2, -3, 4, 8, -2}, Out));
  EXPECT_EQ(Out.toVector(), (std::vector<Timestamp>{1, 2, 3, 4, 6, 8}));
  // Huge-stride entry at the INT32_MAX edge decodes exactly.
  ASSERT_TRUE(
      TimestampSet::decodeSigned({1, 0x7FFFFFFF, -0x3FFFFFFF}, Out));
  EXPECT_EQ(Out.count(), 3u);
  EXPECT_TRUE(Out.contains(0x40000000u));
}

TEST(TimestampSetEdge, EncodedValueCountMatchesEncoding) {
  Rng R(314159);
  for (int Iter = 0; Iter < 40; ++Iter) {
    std::vector<Timestamp> List = randomSortedList(R, 150);
    TimestampSet Set = TimestampSet::fromSorted(List);
    EXPECT_EQ(Set.encodedValueCount(), Set.encodeSigned().size());
  }
}

} // namespace
