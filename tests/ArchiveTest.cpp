//===- tests/ArchiveTest.cpp - compacted TWPP archive format ---------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Archive.h"

#include "TestTraces.h"
#include "support/FileIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace twpp;

namespace {

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + "/" + Name;
}

TEST(FunctionTableCodecTest, RoundTrip) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  for (const TwppFunctionTable &Table : Compacted.Functions) {
    TwppFunctionTable Back;
    ASSERT_TRUE(decodeTwppFunctionTable(encodeTwppFunctionTable(Table),
                                        Back));
    EXPECT_EQ(Back, Table);
  }
}

TEST(FunctionTableCodecTest, RejectsTruncated) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  std::vector<uint8_t> Bytes =
      encodeTwppFunctionTable(Compacted.Functions[1]);
  Bytes.resize(Bytes.size() - 2);
  TwppFunctionTable Back;
  EXPECT_FALSE(decodeTwppFunctionTable(Bytes, Back));
}

TEST(ArchiveTest, WriteOpenReadAll) {
  std::string Path = tempPath("twpp_archive_test.twpp");
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));

  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  EXPECT_EQ(Reader.functionCount(), 2u);
  EXPECT_EQ(Reader.callCount(0), 1u);
  EXPECT_EQ(Reader.callCount(1), 5u);

  TwppWpp Back;
  ASSERT_TRUE(Reader.readAll(Back));
  EXPECT_EQ(Back, Compacted);
  EXPECT_EQ(reconstructRawTrace(Back), Trace);
  std::remove(Path.c_str());
}

TEST(ArchiveTest, OutOfRangeFunctionIdsAreRejected) {
  std::string Path = tempPath("twpp_archive_bounds.twpp");
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));

  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  ASSERT_EQ(Reader.functionCount(), 2u);
  // callCount() used to index the table without a bounds check; an
  // unknown id must report zero calls, not undefined behaviour.
  EXPECT_EQ(Reader.callCount(2), 0u);
  EXPECT_EQ(Reader.callCount(1u << 20), 0u);
  TwppFunctionTable Table;
  EXPECT_FALSE(Reader.extractFunction(2, Table));
  FunctionPathTraces Traces;
  EXPECT_FALSE(Reader.extractFunctionPathTraces(1u << 20, Traces));
  std::remove(Path.c_str());
}

TEST(ArchiveTest, ExtractSingleFunction) {
  std::string Path = tempPath("twpp_archive_extract.twpp");
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));

  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  FunctionPathTraces F;
  ASSERT_TRUE(Reader.extractFunctionPathTraces(1, F));
  ASSERT_EQ(F.Traces.size(), 2u);
  EXPECT_EQ(F.Traces[0],
            (PathTrace{1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10}));
  EXPECT_EQ(F.Traces[1],
            (PathTrace{1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10}));
  EXPECT_EQ(F.CallCount, 5u);

  // Out-of-range function id fails cleanly.
  TwppFunctionTable Table;
  EXPECT_FALSE(Reader.extractFunction(7, Table));
  std::remove(Path.c_str());
}

TEST(ArchiveTest, DcgRoundTripsThroughLzw) {
  std::string Path = tempPath("twpp_archive_dcg.twpp");
  RawTrace Trace = fixtures::randomTrace(99);
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));

  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  DynamicCallGraph Dcg;
  ASSERT_TRUE(Reader.readDcg(Dcg));
  EXPECT_EQ(Dcg, Compacted.Dcg);
  std::remove(Path.c_str());
}

TEST(ArchiveTest, OpenRejectsGarbage) {
  std::string Path = tempPath("twpp_archive_garbage.twpp");
  ASSERT_TRUE(writeFileBytes(Path, {1, 2, 3, 4, 5, 6, 7, 8}));
  ArchiveReader Reader;
  EXPECT_FALSE(Reader.open(Path));
  std::remove(Path.c_str());

  ArchiveReader Missing;
  EXPECT_FALSE(Missing.open(tempPath("no_such_file.twpp")));
}

/// Property sweep: archive round trip on random traces.
class ArchiveRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArchiveRoundTrip, RandomTraces) {
  std::string Path = tempPath(
      ("twpp_archive_rt_" + std::to_string(GetParam()) + ".twpp").c_str());
  RawTrace Trace = fixtures::randomTrace(GetParam(), 8, 5000);
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));
  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  TwppWpp Back;
  ASSERT_TRUE(Reader.readAll(Back));
  EXPECT_EQ(Back, Compacted);
  EXPECT_EQ(reconstructRawTrace(Back), Trace);
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveRoundTrip,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

} // namespace
