//===- tests/ArchiveTest.cpp - compacted TWPP archive format ---------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
//
// The reader tests are parameterized over IoMode so every behaviour is
// pinned on both the buffered and the zero-copy (mmap) read paths, and
// the round-trip sweeps decode through BOTH paths and assert the results
// are structurally identical — the differential harness of the zero-copy
// refactor.
//
//===----------------------------------------------------------------------===//

#include "wpp/Archive.h"

#include "TestTraces.h"
#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace twpp;

namespace {

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + "/" + Name;
}

TEST(FunctionTableCodecTest, RoundTrip) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  for (const TwppFunctionTable &Table : Compacted.Functions) {
    TwppFunctionTable Back;
    ASSERT_TRUE(decodeTwppFunctionTable(encodeTwppFunctionTable(Table),
                                        Back));
    EXPECT_EQ(Back, Table);
  }
}

TEST(FunctionTableCodecTest, RejectsTruncated) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  std::vector<uint8_t> Bytes =
      encodeTwppFunctionTable(Compacted.Functions[1]);
  Bytes.resize(Bytes.size() - 2);
  TwppFunctionTable Back;
  EXPECT_FALSE(decodeTwppFunctionTable(Bytes, Back));
}

/// Every reader test below runs once per IoMode.
class ArchiveModeTest : public ::testing::TestWithParam<IoMode> {};

INSTANTIATE_TEST_SUITE_P(IoModes, ArchiveModeTest,
                         ::testing::Values(IoMode::Buffered, IoMode::Mmap),
                         [](const ::testing::TestParamInfo<IoMode> &Info) {
                           return ioModeName(Info.param);
                         });

TEST_P(ArchiveModeTest, WriteOpenReadAll) {
  std::string Path = tempPath("twpp_archive_test.twpp");
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));

  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path, GetParam()));
  // On this platform a requested mode must actually engage (no silent
  // fallback on healthy files).
  EXPECT_EQ(Reader.ioMode(), GetParam());
  EXPECT_EQ(Reader.functionCount(), 2u);
  EXPECT_EQ(Reader.callCount(0), 1u);
  EXPECT_EQ(Reader.callCount(1), 5u);

  TwppWpp Back;
  ASSERT_TRUE(Reader.readAll(Back));
  EXPECT_EQ(Back, Compacted);
  EXPECT_EQ(reconstructRawTrace(Back), Trace);
  std::remove(Path.c_str());
}

TEST_P(ArchiveModeTest, OutOfRangeFunctionIdsAreRejected) {
  std::string Path = tempPath("twpp_archive_bounds.twpp");
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));

  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path, GetParam()));
  ASSERT_EQ(Reader.functionCount(), 2u);
  // callCount() used to index the table without a bounds check; an
  // unknown id must report zero calls, not undefined behaviour.
  EXPECT_EQ(Reader.callCount(2), 0u);
  EXPECT_EQ(Reader.callCount(1u << 20), 0u);
  TwppFunctionTable Table;
  EXPECT_FALSE(Reader.extractFunction(2, Table));
  FunctionPathTraces Traces;
  EXPECT_FALSE(Reader.extractFunctionPathTraces(1u << 20, Traces));
  std::remove(Path.c_str());
}

TEST_P(ArchiveModeTest, ExtractSingleFunction) {
  std::string Path = tempPath("twpp_archive_extract.twpp");
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));

  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path, GetParam()));
  FunctionPathTraces F;
  ASSERT_TRUE(Reader.extractFunctionPathTraces(1, F));
  ASSERT_EQ(F.Traces.size(), 2u);
  EXPECT_EQ(F.Traces[0],
            (PathTrace{1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10}));
  EXPECT_EQ(F.Traces[1],
            (PathTrace{1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10}));
  EXPECT_EQ(F.CallCount, 5u);

  // Out-of-range function id fails cleanly.
  TwppFunctionTable Table;
  EXPECT_FALSE(Reader.extractFunction(7, Table));
  std::remove(Path.c_str());
}

TEST_P(ArchiveModeTest, DcgRoundTripsThroughLzw) {
  std::string Path = tempPath("twpp_archive_dcg.twpp");
  RawTrace Trace = fixtures::randomTrace(99);
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));

  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path, GetParam()));
  DynamicCallGraph Dcg;
  ASSERT_TRUE(Reader.readDcg(Dcg));
  EXPECT_EQ(Dcg, Compacted.Dcg);
  std::remove(Path.c_str());
}

TEST_P(ArchiveModeTest, OpenRejectsGarbage) {
  std::string Path = tempPath("twpp_archive_garbage.twpp");
  ASSERT_TRUE(writeFileBytes(Path, {1, 2, 3, 4, 5, 6, 7, 8}));
  ArchiveReader Reader;
  EXPECT_FALSE(Reader.open(Path, GetParam()));
  std::remove(Path.c_str());

  ArchiveReader Missing;
  EXPECT_FALSE(Missing.open(tempPath("no_such_file.twpp"), GetParam()));
}

TEST_P(ArchiveModeTest, OpenRejectsEmptyFile) {
  // Zero bytes maps to a valid null span (mmap(2) can't express it, the
  // wrapper special-cases it); the header check must still reject it the
  // same way in both modes.
  std::string Path = tempPath("twpp_archive_empty.twpp");
  ASSERT_TRUE(writeFileBytes(Path, {}));
  ArchiveReader Reader;
  EXPECT_FALSE(Reader.open(Path, GetParam()));
  EXPECT_EQ(Reader.lastError().CheckId, "twpp-archive-header");
  std::remove(Path.c_str());
}

TEST(ArchiveMmapFallback, InjectedMmapFaultFallsBackToBuffered) {
  std::string Path = tempPath("twpp_archive_fallback.twpp");
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));

  TwppWpp Back;
  {
    fault::ScopedFaultSpec Spec("io:mmap:n=1");
    ArchiveReader Reader;
    ASSERT_TRUE(Reader.open(Path, IoMode::Mmap));
    // The mapping failed (injected); the reader degrades, not errors.
    EXPECT_EQ(Reader.ioMode(), IoMode::Buffered);
    ASSERT_TRUE(Reader.readAll(Back));
  }
  EXPECT_EQ(Back, Compacted);
  std::remove(Path.c_str());
}

/// Decodes \p Path through both IoModes and asserts the results are
/// structurally identical, returning the (shared) decoded form.
TwppWpp decodeBothModes(const std::string &Path) {
  TwppWpp Buffered, Mapped;
  ArchiveReader BufferedReader, MappedReader;
  EXPECT_TRUE(BufferedReader.open(Path, IoMode::Buffered));
  EXPECT_TRUE(BufferedReader.readAll(Buffered));
  EXPECT_TRUE(MappedReader.open(Path, IoMode::Mmap));
  EXPECT_EQ(MappedReader.ioMode(), IoMode::Mmap);
  EXPECT_TRUE(MappedReader.readAll(Mapped));
  EXPECT_EQ(Buffered, Mapped);
  EXPECT_EQ(BufferedReader.functionCount(), MappedReader.functionCount());
  for (FunctionId F = 0; F != BufferedReader.functionCount(); ++F) {
    EXPECT_EQ(BufferedReader.callCount(F), MappedReader.callCount(F));
    EXPECT_EQ(BufferedReader.blockLength(F), MappedReader.blockLength(F));
  }
  return Buffered;
}

/// Property sweep: archive round trip on random traces, decoded through
/// both read paths.
class ArchiveRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArchiveRoundTrip, RandomTraces) {
  std::string Path = tempPath(
      ("twpp_archive_rt_" + std::to_string(GetParam()) + ".twpp").c_str());
  RawTrace Trace = fixtures::randomTrace(GetParam(), 8, 5000);
  TwppWpp Compacted = compactWpp(Trace);
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));
  TwppWpp Back = decodeBothModes(Path);
  EXPECT_EQ(Back, Compacted);
  EXPECT_EQ(reconstructRawTrace(Back), Trace);
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveRoundTrip,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

/// Differential A/B decode over the five paper workload archives
/// (Table 2/3 programs) — the committed fixtures the zero-copy
/// acceptance criterion names.
class PaperProfileDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(PaperProfileDifferential, BufferedAndMmapDecodeIdentically) {
  WorkloadProfile Profile = paperProfiles()[GetParam()];
  RawTrace Trace = generateWorkloadTrace(Profile);
  TwppWpp Compacted = compactWpp(Trace);
  std::string Path = tempPath(("twpp_diff_" + Profile.Name + ".twpp").c_str());
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));
  TwppWpp Back = decodeBothModes(Path);
  EXPECT_EQ(Back, Compacted);
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(PaperProfiles, PaperProfileDifferential,
                         ::testing::Range(size_t(0), size_t(5)),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return paperProfiles()[Info.param].Name.substr(4);
                         });

} // namespace
