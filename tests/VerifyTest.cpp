//===- tests/VerifyTest.cpp - invariant verifier unit tests ----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the diagnostics engine and each check family. Every
/// check in the catalog gets at least one negative case (a structure
/// violating exactly that invariant, caught under that check id) and the
/// clean pipeline output passes every family with zero diagnostics.
///
//===----------------------------------------------------------------------===//

#include "dataflow/AnnotatedCfg.h"
#include "dataflow/IrFacts.h"
#include "lang/Lower.h"
#include "verify/Verify.h"
#include "wpp/Twpp.h"

#include "TestTraces.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

using namespace twpp;
using namespace twpp::verify;

namespace {

// Arm the TWPP_VERIFY post-stage assertions for the pipeline-built
// fixtures in this binary (active only when the env var is set).
const bool PipelineVerifierInstalled = [] {
  installPipelineVerifier();
  return true;
}();

/// Diagnostics filed under \p Id.
std::vector<const Diagnostic *> diagsFor(const DiagnosticEngine &Engine,
                                         std::string_view Id) {
  std::vector<const Diagnostic *> Out;
  for (const Diagnostic &D : Engine.diagnostics())
    if (D.CheckId == Id)
      Out.push_back(&D);
  return Out;
}

bool hasCheck(const DiagnosticEngine &Engine, std::string_view Id) {
  return !diagsFor(Engine, Id).empty();
}

/// A timestamp set with non-canonical run structure, built through the
/// sign-delimited decoder (the only public door: fromSorted always
/// canonicalizes, and decodeSigned validates entries but not cross-entry
/// ordering or packing — exactly what a corrupted archive could carry).
TimestampSet decodedSet(const std::vector<int64_t> &Encoded) {
  TimestampSet Set;
  EXPECT_TRUE(TimestampSet::decodeSigned(Encoded, Set));
  return Set;
}

/// Minimal one-trace function table around \p Trace and \p Dict.
TwppFunctionTable makeTable(TwppTrace Trace, DbbDictionary Dict = {}) {
  TwppFunctionTable Table;
  Table.TraceStrings.push_back(std::move(Trace));
  Table.Dictionaries.push_back(std::move(Dict));
  Table.Traces.push_back({0, 0});
  Table.UseCounts.push_back(1);
  Table.CallCount = 1;
  return Table;
}

//===----------------------------------------------------------------------===//
// Glob matcher + catalog + engine + renderers.
//===----------------------------------------------------------------------===//

TEST(GlobTest, MatchesExactStarAndQuestion) {
  EXPECT_TRUE(checkIdMatchesGlob("twpp-archive-header", "twpp-archive-header"));
  EXPECT_TRUE(checkIdMatchesGlob("twpp-archive-header", "*"));
  EXPECT_TRUE(checkIdMatchesGlob("twpp-archive-header", "twpp-archive-*"));
  EXPECT_TRUE(checkIdMatchesGlob("twpp-archive-series-order", "*-order"));
  EXPECT_TRUE(checkIdMatchesGlob("twpp-ir-terminator", "twpp-?r-*"));
  EXPECT_FALSE(checkIdMatchesGlob("twpp-ir-terminator", "twpp-archive-*"));
  EXPECT_FALSE(checkIdMatchesGlob("twpp-archive-header", ""));
  EXPECT_TRUE(checkIdMatchesGlob("", "*"));
  // Star backtracking: the first '-order' candidate is not the last.
  EXPECT_TRUE(checkIdMatchesGlob("twpp-archive-index-order", "*-order"));
  EXPECT_FALSE(checkIdMatchesGlob("twpp-archive-index-order", "*-bounds"));
}

TEST(CatalogTest, IdsAreUniqueAndResolvable) {
  const std::vector<CheckInfo> &Catalog = checkCatalog();
  EXPECT_GE(Catalog.size(), 24u);
  std::set<std::string> Ids;
  for (const CheckInfo &Info : Catalog) {
    EXPECT_TRUE(Ids.insert(Info.Id).second) << "duplicate id " << Info.Id;
    EXPECT_EQ(std::string(Info.Id).rfind("twpp-", 0), 0u) << Info.Id;
    const CheckInfo *Found = findCheck(Info.Id);
    ASSERT_NE(Found, nullptr) << Info.Id;
    EXPECT_STREQ(Found->Id, Info.Id);
    EXPECT_NE(std::string(Info.Summary), "");
  }
  EXPECT_EQ(findCheck("twpp-no-such-check"), nullptr);
}

TEST(CatalogTest, DefaultSeveritiesMatchImplementations) {
  EXPECT_EQ(findCheck(checks::ArchiveHeader)->DefaultSev, Severity::Error);
  EXPECT_EQ(findCheck(checks::ArchiveIndexOrder)->DefaultSev,
            Severity::Warning);
  EXPECT_EQ(findCheck(checks::ArchivePoolDedup)->DefaultSev,
            Severity::Warning);
  EXPECT_EQ(findCheck(checks::DbbChainMaximality)->DefaultSev,
            Severity::Warning);
  EXPECT_EQ(findCheck(checks::IrUnreachableBlock)->DefaultSev,
            Severity::Warning);
  EXPECT_EQ(findCheck(checks::IrDefBeforeUse)->DefaultSev, Severity::Warning);
  EXPECT_EQ(findCheck(checks::DcgConsistency)->DefaultSev, Severity::Error);
}

TEST(EngineTest, FiltersByGlobAndTallies) {
  DiagnosticEngine Engine("twpp-archive-*");
  EXPECT_TRUE(Engine.checkEnabled(checks::ArchiveHeader));
  EXPECT_FALSE(Engine.checkEnabled(checks::IrTerminator));
  Engine.report(checks::ArchiveHeader, Severity::Error, "bad");
  Engine.report(checks::IrTerminator, Severity::Error, "filtered out");
  Engine.report(checks::ArchiveIndexOrder, Severity::Warning, "late block");
  ASSERT_EQ(Engine.diagnostics().size(), 2u);
  EXPECT_EQ(Engine.errorCount(), 1u);
  EXPECT_EQ(Engine.count(Severity::Warning), 1u);
  EXPECT_FALSE(Engine.clean());
  EXPECT_FALSE(Engine.empty());
}

TEST(EngineTest, WarningsAloneStayClean) {
  DiagnosticEngine Engine;
  Engine.report(checks::ArchivePoolDedup, Severity::Warning, "dup pool");
  Engine.report(checks::IrUnreachableBlock, Severity::Note, "fyi");
  EXPECT_TRUE(Engine.clean());
  EXPECT_FALSE(Engine.empty());
  EXPECT_EQ(Engine.errorCount(), 0u);
}

TEST(RenderTest, TextCarriesSeverityIdLocationAndSummary) {
  DiagnosticEngine Engine;
  Engine.report(checks::ArchiveHeader, Severity::Error, "bad magic",
                "header", 0);
  Engine.report(checks::ArchiveIndexOrder, Severity::Warning,
                "stored out of order", "index");
  std::string Text = renderDiagnosticsText(Engine);
  EXPECT_NE(Text.find("error: [twpp-archive-header] header: bad magic"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("(byte 0)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("warning: [twpp-archive-index-order]"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("1 error(s), 1 warning(s), 0 note(s)"),
            std::string::npos)
      << Text;
}

TEST(RenderTest, JsonCarriesSchemaSummaryAndByteOffset) {
  DiagnosticEngine Engine;
  Engine.report(checks::ArchiveIndexBounds, Severity::Error,
                "extent past EOF", "index row 3", 100);
  Engine.report(checks::DbbChainMaximality, Severity::Warning, "uncollapsed");
  std::string Json = renderDiagnosticsJson(Engine);
  EXPECT_NE(Json.find("\"schema\": \"twpp-verify-v1\""), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"errors\": 1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"warnings\": 1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"check\": \"twpp-archive-index-bounds\""),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"byteOffset\": 100"), std::string::npos) << Json;
  // The offset-less diagnostic must not carry the sentinel.
  EXPECT_EQ(Json.find(std::to_string(NoByteOffset)), std::string::npos)
      << Json;
}

//===----------------------------------------------------------------------===//
// Archive family: timestamp series.
//===----------------------------------------------------------------------===//

TEST(SeriesChecksTest, CanonicalSetIsClean) {
  DiagnosticEngine Engine;
  runTimestampSetChecks(TimestampSet::fromSorted({1, 2, 3, 7, 9, 11}), "t",
                        Engine);
  EXPECT_TRUE(Engine.empty()) << renderDiagnosticsText(Engine);
}

TEST(SeriesChecksTest, EmptySetIsAnOrderError) {
  DiagnosticEngine Engine;
  runTimestampSetChecks(TimestampSet(), "t", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveSeriesOrder));
}

TEST(SeriesChecksTest, OutOfOrderRunsAreCaught) {
  // decodeSigned builds the runs verbatim: {-5, -3} yields singleton 5
  // followed by singleton 3 — valid entries, broken ordering.
  DiagnosticEngine Engine;
  runTimestampSetChecks(decodedSet({-5, -3}), "t", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveSeriesOrder));
  EXPECT_GT(Engine.errorCount(), 0u);
}

TEST(SeriesChecksTest, NonCanonicalPackingIsCaught) {
  // Two adjacent singletons 1 and 2: ordered, round-trips, but fromSorted
  // would pack them into one step-1 run — the encoding wastes space.
  DiagnosticEngine Engine;
  runTimestampSetChecks(decodedSet({-1, -2}), "t", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveSeriesSignEncoding));
  EXPECT_FALSE(hasCheck(Engine, checks::ArchiveSeriesOrder));
}

TEST(SeriesChecksTest, SplitRunPackingIsCaught) {
  // A step-1 run 1..2 followed by singleton 3; canonical form is 1..3.
  DiagnosticEngine Engine;
  runTimestampSetChecks(decodedSet({1, -2, -3}), "t", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveSeriesSignEncoding));
}

//===----------------------------------------------------------------------===//
// Archive family: trace partition + dedup + pools + dictionaries.
//===----------------------------------------------------------------------===//

TEST(WppChecksTest, CleanPipelineOutputHasNoDiagnostics) {
  TwppWpp Wpp = compactWpp(fixtures::figure1Trace());
  DiagnosticEngine Engine;
  runWppChecks(Wpp, Engine);
  EXPECT_TRUE(Engine.empty()) << renderDiagnosticsText(Engine);
}

TEST(WppChecksTest, CleanRandomTraceHasNoDiagnostics) {
  TwppWpp Wpp = compactWpp(fixtures::randomTrace(99, 4, 2000));
  DiagnosticEngine Engine;
  runWppChecks(Wpp, Engine);
  EXPECT_TRUE(Engine.empty()) << renderDiagnosticsText(Engine);
}

TEST(WppChecksTest, WrongTraceLengthIsAPartitionError) {
  TwppFunctionTable Table =
      makeTable(twppFromBlockSequence({1, 2, 1, 2, 3}));
  Table.TraceStrings[0].Length += 1;
  DiagnosticEngine Engine("twpp-archive-trace-partition");
  runFunctionTableChecks(Table, 0, Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveTracePartition));
}

TEST(WppChecksTest, UnsortedBlockEntriesAreAPartitionError) {
  TwppFunctionTable Table =
      makeTable(twppFromBlockSequence({1, 2, 1, 2, 3}));
  ASSERT_GE(Table.TraceStrings[0].Blocks.size(), 2u);
  std::swap(Table.TraceStrings[0].Blocks[0], Table.TraceStrings[0].Blocks[1]);
  DiagnosticEngine Engine("twpp-archive-trace-partition");
  runFunctionTableChecks(Table, 0, Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveTracePartition));
}

TEST(WppChecksTest, OverlappingSetsWithMatchingCountAreCaught) {
  // Counts agree with Length (2 + 2 == 4) but timestamp 2 is claimed
  // twice and step 3 by nobody — only materialization catches this.
  TwppTrace Trace;
  Trace.Length = 4;
  Trace.Blocks.push_back({1, TimestampSet::fromSorted({1, 2})});
  Trace.Blocks.push_back({2, TimestampSet::fromSorted({2, 4})});
  DiagnosticEngine Engine("twpp-archive-trace-partition");
  runFunctionTableChecks(makeTable(Trace), 0, Engine);
  ASSERT_TRUE(hasCheck(Engine, checks::ArchiveTracePartition));
  EXPECT_NE(diagsFor(Engine, checks::ArchiveTracePartition)[0]->Message.find(
                "more than one block"),
            std::string::npos);
}

TEST(WppChecksTest, DedupIndexOutOfRangeIsCaught) {
  TwppFunctionTable Table = makeTable(twppFromBlockSequence({3}));
  Table.Traces[0].first = 7;
  DiagnosticEngine Engine("twpp-archive-dedup-integrity");
  runFunctionTableChecks(Table, 0, Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveDedupIntegrity));
}

TEST(WppChecksTest, ZeroUseCountAndSumMismatchAreCaught) {
  TwppFunctionTable Table = makeTable(twppFromBlockSequence({3}));
  Table.UseCounts[0] = 0;
  DiagnosticEngine Engine("twpp-archive-dedup-integrity");
  runFunctionTableChecks(Table, 0, Engine);
  // Both the zero use count and the calls-vs-uses sum fire.
  EXPECT_GE(diagsFor(Engine, checks::ArchiveDedupIntegrity).size(), 2u);
}

TEST(WppChecksTest, DuplicateTracePairIsCaught) {
  TwppFunctionTable Table = makeTable(twppFromBlockSequence({3}));
  Table.Traces.push_back(Table.Traces[0]);
  Table.UseCounts.push_back(1);
  Table.CallCount = 2;
  DiagnosticEngine Engine("twpp-archive-dedup-integrity");
  runFunctionTableChecks(Table, 0, Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveDedupIntegrity));
}

TEST(WppChecksTest, UseCountTableSizeMismatchIsCaught) {
  TwppFunctionTable Table = makeTable(twppFromBlockSequence({3}));
  Table.UseCounts.clear();
  DiagnosticEngine Engine("twpp-archive-dedup-integrity");
  runFunctionTableChecks(Table, 0, Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveDedupIntegrity));
}

TEST(WppChecksTest, UnreferencedAndDuplicatePoolEntriesWarn) {
  TwppFunctionTable Table = makeTable(twppFromBlockSequence({3}));
  Table.TraceStrings.push_back(twppFromBlockSequence({9})); // unreferenced
  Table.Dictionaries.push_back(DbbDictionary{});            // duplicate of [0]
  DiagnosticEngine Engine("twpp-archive-pool-dedup");
  runFunctionTableChecks(Table, 0, Engine);
  std::vector<const Diagnostic *> Pool =
      diagsFor(Engine, checks::ArchivePoolDedup);
  ASSERT_GE(Pool.size(), 3u); // unreferenced string, unreferenced dict, dup.
  for (const Diagnostic *D : Pool)
    EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_TRUE(Engine.clean());
}

TEST(DbbChecksTest, ShortChainIsAStructureError) {
  DbbDictionary Dict;
  Dict.Chains = {{3}};
  DiagnosticEngine Engine("twpp-dbb-chain-structure");
  runFunctionTableChecks(makeTable(twppFromBlockSequence({5}), Dict), 0,
                         Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::DbbChainStructure));
}

TEST(DbbChecksTest, UnsortedChainHeadsAreCaught) {
  DbbDictionary Dict;
  Dict.Chains = {{4, 5}, {2, 3}};
  DiagnosticEngine Engine("twpp-dbb-chain-structure");
  runFunctionTableChecks(makeTable(twppFromBlockSequence({7}), Dict), 0,
                         Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::DbbChainStructure));
}

TEST(DbbChecksTest, BodyContainingAnotherHeadIsCaught) {
  DbbDictionary Dict;
  Dict.Chains = {{2, 3}, {3, 4}};
  DiagnosticEngine Engine("twpp-dbb-chain-structure");
  runFunctionTableChecks(makeTable(twppFromBlockSequence({7}), Dict), 0,
                         Engine);
  // Block 3 heads chain 1 while sitting in chain 0's body; both the
  // ambiguity and the vertex-disjointness findings fire.
  EXPECT_GE(diagsFor(Engine, checks::DbbChainStructure).size(), 2u);
}

TEST(DbbChecksTest, SharedBodyBlockIsCaught) {
  DbbDictionary Dict;
  Dict.Chains = {{2, 9}, {4, 9}};
  DiagnosticEngine Engine("twpp-dbb-chain-structure");
  runFunctionTableChecks(makeTable(twppFromBlockSequence({7}), Dict), 0,
                         Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::DbbChainStructure));
}

TEST(DbbChecksTest, UncollapsedChainIsAMaximalityWarning) {
  // {1,2,1,2} with an empty dictionary: stage 3 would have collapsed the
  // repeated 1->2 run into a chain, so this pair is not a fixed point.
  DiagnosticEngine Engine("twpp-dbb-chain-maximality");
  runFunctionTableChecks(makeTable(twppFromBlockSequence({1, 2, 1, 2})), 0,
                         Engine);
  std::vector<const Diagnostic *> Max =
      diagsFor(Engine, checks::DbbChainMaximality);
  ASSERT_EQ(Max.size(), 1u);
  EXPECT_EQ(Max[0]->Sev, Severity::Warning);
}

//===----------------------------------------------------------------------===//
// Archive family: DCG.
//===----------------------------------------------------------------------===//

class DcgChecks : public ::testing::Test {
protected:
  void SetUp() override { Wpp = compactWpp(fixtures::figure1Trace()); }

  /// Runs the full in-memory family and returns the engine.
  DiagnosticEngine run() {
    DiagnosticEngine Engine;
    runWppChecks(Wpp, Engine);
    return Engine;
  }

  TwppWpp Wpp;
};

TEST_F(DcgChecks, FixtureIsClean) {
  DiagnosticEngine Engine = run();
  EXPECT_TRUE(Engine.empty()) << renderDiagnosticsText(Engine);
  // Figure 1: main called once, f five times — enough structure for the
  // corruption cases below.
  ASSERT_EQ(Wpp.Dcg.Roots.size(), 1u);
  ASSERT_GE(Wpp.Dcg.Nodes.size(), 6u);
  ASSERT_EQ(Wpp.Dcg.Nodes[0].Children.size(), 5u);
}

TEST_F(DcgChecks, CalleeOutOfRangeIsCaught) {
  Wpp.Dcg.Nodes[1].Function = 99;
  EXPECT_TRUE(hasCheck(run(), checks::DcgConsistency));
}

TEST_F(DcgChecks, TraceIndexOutOfRangeIsCaught) {
  Wpp.Dcg.Nodes[1].TraceIndex = 99;
  EXPECT_TRUE(hasCheck(run(), checks::DcgConsistency));
}

TEST_F(DcgChecks, ChildNotAfterParentIsCaught) {
  Wpp.Dcg.Nodes[0].Children[0] = 0;
  EXPECT_TRUE(hasCheck(run(), checks::DcgConsistency));
}

TEST_F(DcgChecks, ChildIndexOutOfRangeIsCaught) {
  Wpp.Dcg.Nodes[0].Children[0] = 99;
  EXPECT_TRUE(hasCheck(run(), checks::DcgConsistency));
}

TEST_F(DcgChecks, DecreasingAnchorsAreCaught) {
  std::vector<uint32_t> &Anchors = Wpp.Dcg.Nodes[0].Anchors;
  ASSERT_GE(Anchors.size(), 2u);
  std::swap(Anchors.front(), Anchors.back());
  ASSERT_NE(Anchors.front(), Anchors.back());
  EXPECT_TRUE(hasCheck(run(), checks::DcgConsistency));
}

TEST_F(DcgChecks, AnchorBeyondTraceLengthIsCaught) {
  Wpp.Dcg.Nodes[0].Anchors.back() = 1000000;
  EXPECT_TRUE(hasCheck(run(), checks::DcgConsistency));
}

TEST_F(DcgChecks, AnchorCountMismatchIsCaught) {
  Wpp.Dcg.Nodes[0].Anchors.pop_back();
  EXPECT_TRUE(hasCheck(run(), checks::DcgConsistency));
}

TEST_F(DcgChecks, RootOutOfRangeIsCaught) {
  Wpp.Dcg.Roots.push_back(99);
  EXPECT_TRUE(hasCheck(run(), checks::DcgConsistency));
}

TEST_F(DcgChecks, OrphanNodeIsCaught) {
  DcgNode Orphan;
  Orphan.Function = 1;
  Orphan.TraceIndex = 0;
  Wpp.Dcg.Nodes.push_back(Orphan);
  // The orphan also inflates f's DCG call count past the table's.
  DiagnosticEngine Engine = run();
  EXPECT_TRUE(hasCheck(Engine, checks::DcgConsistency));
  EXPECT_TRUE(hasCheck(Engine, checks::DcgCallCounts));
}

TEST_F(DcgChecks, DuplicateParentIsCaught) {
  std::vector<uint32_t> &Children = Wpp.Dcg.Nodes[0].Children;
  ASSERT_GE(Children.size(), 2u);
  Children[1] = Children[0]; // one child twice, another orphaned
  EXPECT_TRUE(hasCheck(run(), checks::DcgConsistency));
}

TEST_F(DcgChecks, CallCountMismatchIsCaught) {
  Wpp.Functions[1].CallCount += 1;
  Wpp.Functions[1].UseCounts[0] += 1; // keep dedup sums consistent
  EXPECT_TRUE(hasCheck(run(), checks::DcgCallCounts));
}

//===----------------------------------------------------------------------===//
// IR family.
//===----------------------------------------------------------------------===//

/// One-block function: optional statements, Return terminator.
Function makeFunction(std::vector<Expr> Exprs, std::vector<Stmt> Stmts) {
  Function F;
  F.Name = "f";
  F.Exprs = std::move(Exprs);
  BasicBlock Entry;
  Entry.Stmts = std::move(Stmts);
  F.Blocks.push_back(Entry);
  return F;
}

Module makeModule(Function F) {
  Module M;
  M.Functions.push_back(std::move(F));
  M.VarNames = {"x", "y"};
  return M;
}

TEST(IrChecksTest, CompiledProgramIsClean) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() {"
                             "  read n;"
                             "  s = 0;"
                             "  while (n > 0) { s = s + n; n = n - 1; }"
                             "  print s;"
                             "}",
                             M, Error))
      << Error;
  DiagnosticEngine Engine;
  runModuleChecks(M, Engine);
  EXPECT_TRUE(Engine.empty()) << renderDiagnosticsText(Engine);
}

TEST(IrChecksTest, EmptyFunctionIsCaught) {
  Function F;
  F.Name = "hollow";
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::IrEmptyFunction));
}

TEST(IrChecksTest, JumpToMissingBlockIsCaught) {
  Function F = makeFunction({}, {});
  F.Blocks[0].Term = BasicBlock::Terminator::Jump;
  F.Blocks[0].TrueSucc = 5;
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::IrEdgeTarget));
}

TEST(IrChecksTest, BranchEdgesAndConditionAreChecked) {
  Function F = makeFunction({}, {});
  F.Blocks[0].Term = BasicBlock::Terminator::Branch;
  F.Blocks[0].CondExpr = 7; // empty pool
  F.Blocks[0].TrueSucc = 0; // below range
  F.Blocks[0].FalseSucc = 9;
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::IrTerminator));
  EXPECT_GE(diagsFor(Engine, checks::IrEdgeTarget).size(), 2u);
}

TEST(IrChecksTest, ReturnValueOutsidePoolIsCaught) {
  Function F = makeFunction({}, {});
  F.Blocks[0].HasRetValue = true;
  F.Blocks[0].RetExpr = 3;
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::IrTerminator));
}

TEST(IrChecksTest, ExpressionCycleIsCaught) {
  Expr SelfLoop;
  SelfLoop.Kind = ExprKind::Add;
  SelfLoop.Lhs = 0; // references itself
  SelfLoop.Rhs = 0;
  Function F = makeFunction({SelfLoop}, {});
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::IrExprCycle));
}

TEST(IrChecksTest, OperandOutsidePoolIsCaught) {
  Expr Bad;
  Bad.Kind = ExprKind::Neg;
  Bad.Lhs = 5;
  Function F = makeFunction({Bad}, {});
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::IrExprCycle));
}

TEST(IrChecksTest, StatementOperandOutsidePoolIsCaught) {
  Stmt S;
  S.StmtKind = Stmt::Kind::Print;
  S.ExprIndex = 4;
  Function F = makeFunction({}, {S});
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::IrExprCycle));
}

TEST(IrChecksTest, CallToMissingFunctionIsCaught) {
  Stmt S;
  S.StmtKind = Stmt::Kind::Call;
  S.Callee = 3;
  Function F = makeFunction({}, {S});
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::IrCallTarget));
}

TEST(IrChecksTest, MainIdOutOfRangeIsCaught) {
  Module M = makeModule(makeFunction({}, {}));
  M.MainId = 5;
  DiagnosticEngine Engine;
  runModuleChecks(M, Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::IrCallTarget));
}

TEST(IrChecksTest, UnreachableBlockWarns) {
  Function F = makeFunction({}, {});
  F.Blocks.push_back(BasicBlock{}); // block 2, reached by nothing
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  std::vector<const Diagnostic *> Unreachable =
      diagsFor(Engine, checks::IrUnreachableBlock);
  ASSERT_EQ(Unreachable.size(), 1u);
  EXPECT_EQ(Unreachable[0]->Sev, Severity::Warning);
  EXPECT_TRUE(Engine.clean());
}

TEST(IrChecksTest, ReadBeforeDefinitionWarns) {
  Expr ReadX;
  ReadX.Kind = ExprKind::Var;
  ReadX.Var = 0;
  Stmt S;
  S.StmtKind = Stmt::Kind::Assign;
  S.Target = 1;
  S.ExprIndex = 0;
  Function F = makeFunction({ReadX}, {S});
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  std::vector<const Diagnostic *> Uses =
      diagsFor(Engine, checks::IrDefBeforeUse);
  ASSERT_EQ(Uses.size(), 1u);
  EXPECT_NE(Uses[0]->Message.find("'x'"), std::string::npos);
}

TEST(IrChecksTest, ParametersCountAsDefined) {
  Expr ReadX;
  ReadX.Kind = ExprKind::Var;
  ReadX.Var = 0;
  Stmt S;
  S.StmtKind = Stmt::Kind::Assign;
  S.Target = 1;
  S.ExprIndex = 0;
  Function F = makeFunction({ReadX}, {S});
  F.Params = {0};
  DiagnosticEngine Engine;
  runModuleChecks(makeModule(F), Engine);
  EXPECT_FALSE(hasCheck(Engine, checks::IrDefBeforeUse))
      << renderDiagnosticsText(Engine);
}

TEST(IrChecksTest, DefinitionOnOnlyOneBranchWarns) {
  // if (x) { y = 1 } ; print y — y is not defined on the fall-through
  // path, so the must-defined analysis flags the print.
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() {"
                             "  read x;"
                             "  if (x > 0) { y = 1; }"
                             "  print y;"
                             "}",
                             M, Error))
      << Error;
  DiagnosticEngine Engine;
  runModuleChecks(M, Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::IrDefBeforeUse));
}

//===----------------------------------------------------------------------===//
// Dataflow family.
//===----------------------------------------------------------------------===//

TEST(DataflowChecksTest, DerivedFactSpecIsClean) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() {"
                             "  read x;"
                             "  y = x + 1;"
                             "  print y;"
                             "}",
                             M, Error))
      << Error;
  const Function &F = M.Functions[M.MainId];
  DiagnosticEngine Engine;
  for (VarId V = 0; V < M.VarNames.size(); ++V) {
    runFactSpecChecks(availabilityFact(F, V), F, "avail", Engine);
    runFactSpecChecks(definedFact(F, V), F, "defined", Engine);
  }
  EXPECT_TRUE(Engine.empty()) << renderDiagnosticsText(Engine);
}

TEST(DataflowChecksTest, UnsortedAndOutOfRangeFactBlocksAreCaught) {
  Function F = makeFunction({}, {});
  BlockFactSpec Spec;
  Spec.GenBlocks = {2, 1}; // unsorted, and 2 exceeds the single block
  DiagnosticEngine Engine;
  runFactSpecChecks(Spec, F, "avail", Engine);
  EXPECT_GE(diagsFor(Engine, checks::DataflowFactBlocks).size(), 2u);
}

TEST(DataflowChecksTest, GenKillOverlapIsCaught) {
  Function F = makeFunction({}, {});
  BlockFactSpec Spec;
  Spec.GenBlocks = {1};
  Spec.KillBlocks = {1};
  DiagnosticEngine Engine;
  runFactSpecChecks(Spec, F, "avail", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::DataflowFactBlocks));
}

TEST(DataflowChecksTest, BuiltAnnotatedCfgIsClean) {
  AnnotatedDynamicCfg Cfg =
      buildAnnotatedCfgFromSequence({1, 2, 1, 2, 3});
  DiagnosticEngine Engine;
  runAnnotatedCfgChecks(Cfg, "cfg", Engine);
  EXPECT_TRUE(Engine.empty()) << renderDiagnosticsText(Engine);
}

TEST(DataflowChecksTest, CfgLengthMismatchIsCaught) {
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence({1, 2, 3});
  Cfg.Length += 1;
  DiagnosticEngine Engine;
  runAnnotatedCfgChecks(Cfg, "cfg", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::DataflowAnnotationPartition));
}

TEST(DataflowChecksTest, AsymmetricEdgeIsCaught) {
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence({1, 2, 3});
  ASSERT_EQ(Cfg.Nodes.size(), 3u);
  Cfg.Nodes[0].Succs.push_back(2); // node 2 has no matching Pred
  DiagnosticEngine Engine;
  runAnnotatedCfgChecks(Cfg, "cfg", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::DataflowAnnotationPartition));
}

TEST(DataflowChecksTest, EdgeIndexOutOfRangeIsCaught) {
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence({1, 2});
  Cfg.Nodes[0].Preds.push_back(99);
  DiagnosticEngine Engine;
  runAnnotatedCfgChecks(Cfg, "cfg", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::DataflowAnnotationPartition));
}

TEST(DataflowChecksTest, OverlappingAnnotationsAreCaught) {
  // Totals still match the length (1+1+1), but two nodes claim time 2.
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence({1, 2, 3});
  Cfg.Nodes[0].Times = TimestampSet::fromSorted({2});
  DiagnosticEngine Engine;
  runAnnotatedCfgChecks(Cfg, "cfg", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::DataflowAnnotationPartition));
}

TEST(DataflowChecksTest, AnnotationMatchesOwningTrace) {
  TwppWpp Wpp = compactWpp(fixtures::figure1Trace());
  DiagnosticEngine Engine;
  for (const TwppFunctionTable &Table : Wpp.Functions)
    for (size_t T = 0; T < Table.Traces.size(); ++T) {
      auto [StringIdx, DictIdx] = Table.Traces[T];
      const TwppTrace &Trace = Table.TraceStrings[StringIdx];
      const DbbDictionary &Dict = Table.Dictionaries[DictIdx];
      AnnotatedDynamicCfg Cfg = buildAnnotatedCfg(Trace, Dict);
      runAnnotatedCfgChecks(Cfg, "cfg", Engine);
      runAnnotationSourceChecks(Cfg, Trace, Dict, "cfg", Engine);
    }
  EXPECT_TRUE(Engine.empty()) << renderDiagnosticsText(Engine);
}

TEST(DataflowChecksTest, ForeignTraceFailsSourceChecks) {
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence({1, 2});
  TwppTrace Other = twppFromBlockSequence({1, 2, 1});
  DiagnosticEngine Engine;
  runAnnotationSourceChecks(Cfg, Other, DbbDictionary{}, "cfg", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::DataflowAnnotationSubset));
}

TEST(DataflowChecksTest, ShiftedAnnotationFailsSourceChecks) {
  TwppTrace Trace = twppFromBlockSequence({1, 2, 1, 2});
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfg(Trace, DbbDictionary{});
  ASSERT_GE(Cfg.Nodes.size(), 1u);
  Cfg.Nodes[0].Times = Cfg.Nodes[0].Times.shifted(2);
  DiagnosticEngine Engine("twpp-dataflow-annotation-subset");
  runAnnotationSourceChecks(Cfg, Trace, DbbDictionary{}, "cfg", Engine);
  EXPECT_TRUE(hasCheck(Engine, checks::DataflowAnnotationSubset));
}

} // namespace
