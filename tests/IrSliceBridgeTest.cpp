//===- tests/IrSliceBridgeTest.cpp - IR to slice-program bridge ------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "slicing/IrSliceBridge.h"

#include "dataflow/AnnotatedCfg.h"
#include "lang/Lower.h"
#include "runtime/Interpreter.h"
#include "slicing/DynamicSlicer.h"
#include "trace/UncompactedFile.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

Module compile(const std::string &Source) {
  Module M;
  std::string Error;
  bool Ok = compileProgram(Source, M, Error);
  EXPECT_TRUE(Ok) << Error;
  return M;
}

TEST(IrSliceBridgeTest, NodesAndEdges) {
  Module M = compile("fn main() {"
                     "  read a;"
                     "  b = a + 1;"
                     "  c = 7;"
                     "  if (a > 0) { d = b; } else { d = c; }"
                     "  print d;"
                     "}");
  const Function &Main = M.Functions[M.MainId];
  IrSliceProgram Bridge = buildSliceProgram(Main);

  // Block 1: read a, b=, c=, branch. Block 2: d=b. Block 3: d=c.
  // Block 4: print d.
  ASSERT_EQ(Bridge.Program.stmtCount(), 7u);
  EXPECT_EQ(Bridge.NodesOfBlock[0],
            (std::vector<BlockId>{1, 2, 3, 4}));
  EXPECT_EQ(Bridge.NodesOfBlock[1], (std::vector<BlockId>{5}));
  EXPECT_EQ(Bridge.NodesOfBlock[2], (std::vector<BlockId>{6}));
  EXPECT_EQ(Bridge.NodesOfBlock[3], (std::vector<BlockId>{7}));

  EXPECT_TRUE(Bridge.Program.stmt(4).IsPredicate);
  EXPECT_EQ(Bridge.Program.Succs[3], (std::vector<BlockId>{5, 6}));
  EXPECT_EQ(Bridge.Program.Succs[4], (std::vector<BlockId>{7}));
  EXPECT_EQ(Bridge.Program.Succs[5], (std::vector<BlockId>{7}));

  // Control deps from postdominators: both arms on the branch.
  EXPECT_EQ(Bridge.Program.stmt(5).ControlDep, 4u);
  EXPECT_EQ(Bridge.Program.stmt(6).ControlDep, 4u);
  EXPECT_EQ(Bridge.Program.stmt(7).ControlDep, 0u);

  EXPECT_EQ(Bridge.nodeOf(1, 0), 1u);
  EXPECT_EQ(Bridge.nodeOf(1, 3), 4u);
  EXPECT_EQ(Bridge.nodeOf(1, 9), 0u);
  EXPECT_EQ(Bridge.nodeOf(9, 0), 0u);
}

TEST(IrSliceBridgeTest, EndToEndSliceExcludesUntakenArm) {
  Module M = compile("fn main() {"
                     "  read a;"
                     "  b = a + 1;"
                     "  c = 7;"
                     "  if (a > 0) { d = b; } else { d = c; }"
                     "  print d;"
                     "}");
  const Function &Main = M.Functions[M.MainId];
  IrSliceProgram Bridge = buildSliceProgram(Main);

  ExecutionResult Result;
  RawTrace Trace = traceExecution(M, {5}, Result); // then-arm taken
  ASSERT_TRUE(Result.Completed);
  std::vector<std::vector<BlockId>> BlockTraces;
  extractFunctionTraces(Trace, Main.Id, BlockTraces);
  ASSERT_EQ(BlockTraces.size(), 1u);

  std::vector<BlockId> StmtTrace = Bridge.expandTrace(BlockTraces[0]);
  EXPECT_EQ(StmtTrace, (std::vector<BlockId>{1, 2, 3, 4, 5, 7}));

  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(StmtTrace);
  VarId D = M.internVar("d");
  SliceResult Slice = sliceApproach3(
      Bridge.Program, Cfg, /*Criterion=*/7, D,
      static_cast<Timestamp>(StmtTrace.size()));
  // c = 7 (node 3) and the untaken else arm (node 6) are out.
  EXPECT_EQ(Slice.Stmts, (std::vector<BlockId>{1, 2, 4, 5, 7}));
}

TEST(IrSliceBridgeTest, LoopProgramSlices) {
  Module M = compile("fn main() {"
                     "  read n;"
                     "  s = 0;"
                     "  junk = 0;"
                     "  i = 0;"
                     "  while (i < n) {"
                     "    s = s + i;"
                     "    junk = junk + 100;"
                     "    i = i + 1;"
                     "  }"
                     "  print s;"
                     "}");
  const Function &Main = M.Functions[M.MainId];
  IrSliceProgram Bridge = buildSliceProgram(Main);

  ExecutionResult Result;
  RawTrace Trace = traceExecution(M, {4}, Result);
  ASSERT_TRUE(Result.Completed);
  std::vector<std::vector<BlockId>> BlockTraces;
  extractFunctionTraces(Trace, Main.Id, BlockTraces);
  std::vector<BlockId> StmtTrace = Bridge.expandTrace(BlockTraces[0]);

  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(StmtTrace);
  VarId S = M.internVar("s");
  // Criterion: the final print (last executed node).
  BlockId PrintNode = StmtTrace.back();
  SliceResult Slice = sliceApproach3(
      Bridge.Program, Cfg, PrintNode, S,
      static_cast<Timestamp>(StmtTrace.size()));

  // The junk accumulator contributes nothing to s.
  VarId Junk = M.internVar("junk");
  for (BlockId Node : Slice.Stmts)
    EXPECT_NE(Bridge.Program.stmt(Node).Def, Junk)
        << "junk node " << Node << " leaked into the slice";
  // But s's chain (read n, i init/increment, s init/accumulate, header)
  // is present: the slice covers more than the criterion itself.
  EXPECT_GE(Slice.Stmts.size(), 6u);
}

TEST(IrSliceBridgeTest, EmptyBlocksAreSkipped) {
  // Nested ifs produce join blocks with no statements; edges must skip
  // through them.
  Module M = compile("fn main() {"
                     "  read a;"
                     "  if (a > 0) { if (a > 10) { a = 10; } }"
                     "  print a;"
                     "}");
  const Function &Main = M.Functions[M.MainId];
  IrSliceProgram Bridge = buildSliceProgram(Main);

  ExecutionResult Result;
  RawTrace Trace = traceExecution(M, {20}, Result);
  ASSERT_TRUE(Result.Completed);
  std::vector<std::vector<BlockId>> BlockTraces;
  extractFunctionTraces(Trace, Main.Id, BlockTraces);
  std::vector<BlockId> StmtTrace = Bridge.expandTrace(BlockTraces[0]);

  // Every node in the expanded trace must be executable in sequence via
  // the bridge CFG (edges skip empty joins).
  for (size_t I = 0; I + 1 < StmtTrace.size(); ++I) {
    const auto &Succs = Bridge.Program.Succs[StmtTrace[I] - 1];
    EXPECT_NE(std::find(Succs.begin(), Succs.end(), StmtTrace[I + 1]),
              Succs.end())
        << "missing edge " << StmtTrace[I] << " -> " << StmtTrace[I + 1];
  }
}

} // namespace
