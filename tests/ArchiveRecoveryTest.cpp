//===- tests/ArchiveRecoveryTest.cpp - twpp_recover salvage ---------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The salvage contract of verify/Recover.h over the same mutation
/// catalog ArchiveCorruptionTest throws at the reader: truncations,
/// header/index/DCG patches and random bit flips. For every damaged
/// input, salvageArchive must either produce a verifier-clean archive
/// (Salvaged == true) or report failure with a named error-severity
/// diagnostic — and it must never crash, whatever the bytes.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "support/Random.h"
#include "verify/ArchiveChecks.h"
#include "verify/Checks.h"
#include "verify/Recover.h"
#include "wpp/Archive.h"

#include "TestTraces.h"

#include <cstdio>
#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace twpp;
using namespace twpp::recover;

namespace {

constexpr size_t PrefixSize = 12;
constexpr size_t IndexStart = 28;
constexpr size_t IndexRowSize = 24;

uint64_t readLe64(const std::vector<uint8_t> &Bytes, size_t At) {
  uint64_t Value = 0;
  for (int I = 0; I < 8; ++I)
    Value |= static_cast<uint64_t>(Bytes[At + I]) << (8 * I);
  return Value;
}

void writeLe64(std::vector<uint8_t> &Bytes, size_t At, uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Bytes[At + I] = static_cast<uint8_t>(Value >> (8 * I));
}

/// The salvage contract, asserted for one (possibly damaged) input.
void expectSalvageContract(const std::vector<uint8_t> &Input,
                           const std::string &What) {
  std::vector<uint8_t> Out;
  SalvageReport Report;
  bool Salvaged = salvageArchive(Input, Out, Report);
  EXPECT_EQ(Salvaged, Report.Salvaged) << What;
  if (Salvaged) {
    verify::DiagnosticEngine Engine;
    verify::runArchiveBytesChecks(Out, Engine);
    EXPECT_TRUE(Engine.clean())
        << What << ": salvage declared success but the output fails "
        << "verification\n"
        << verify::renderDiagnosticsText(Engine);
  } else {
    EXPECT_TRUE(Report.fatal())
        << What << ": salvage failed without naming an error diagnostic";
    EXPECT_TRUE(Out.empty()) << What;
  }
}

class ArchiveRecovery : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    RawTrace Trace = fixtures::randomTrace(2024, 6, 3000);
    Original = new TwppWpp(compactWpp(Trace));
    Bytes = new std::vector<uint8_t>(encodeArchive(*Original));
  }

  static void TearDownTestSuite() {
    delete Original;
    delete Bytes;
    Original = nullptr;
    Bytes = nullptr;
  }

  static TwppWpp *Original;
  static std::vector<uint8_t> *Bytes;
};

TwppWpp *ArchiveRecovery::Original = nullptr;
std::vector<uint8_t> *ArchiveRecovery::Bytes = nullptr;

TEST_F(ArchiveRecovery, IntactArchiveRoundTripsLosslessly) {
  std::vector<uint8_t> Out;
  SalvageReport Report;
  ASSERT_TRUE(salvageArchive(*Bytes, Out, Report))
      << renderSalvageReportText(Report);
  EXPECT_EQ(Out, *Bytes); // canonical encoding: lossless means identical
  EXPECT_EQ(Report.FunctionsKept, Report.FunctionsTotal);
  EXPECT_EQ(Report.FunctionsDropped, 0u);
  EXPECT_EQ(Report.CallsLost, 0u);
  EXPECT_TRUE(Report.DcgRecovered);
  EXPECT_FALSE(Report.fatal());
}

TEST_F(ArchiveRecovery, TruncationAtEveryStride) {
  // Every prefix length (stride 3 to bound runtime, plus the corners)
  // must satisfy the contract; short prefixes additionally must fail
  // with twpp-recover-input.
  for (size_t Cut = 0; Cut <= Bytes->size(); Cut += 3) {
    std::vector<uint8_t> Truncated(Bytes->begin(),
                                   Bytes->begin() + static_cast<long>(Cut));
    expectSalvageContract(Truncated, "truncated to " + std::to_string(Cut));
  }
  std::vector<uint8_t> Empty;
  SalvageReport Report;
  std::vector<uint8_t> Out;
  EXPECT_FALSE(salvageArchive(Empty, Out, Report));
  ASSERT_FALSE(Report.Diagnostics.empty());
  EXPECT_EQ(Report.Diagnostics.front().CheckId,
            verify::checks::RecoverInput);
}

TEST_F(ArchiveRecovery, BadMagicAndVersionAreFatal) {
  for (size_t Byte : {size_t(0), size_t(4)}) {
    std::vector<uint8_t> Variant = *Bytes;
    Variant[Byte] ^= 0xFF;
    std::vector<uint8_t> Out;
    SalvageReport Report;
    EXPECT_FALSE(salvageArchive(Variant, Out, Report))
        << "flipped header byte " << Byte;
    EXPECT_TRUE(Report.fatal());
    ASSERT_FALSE(Report.Diagnostics.empty());
    EXPECT_EQ(Report.Diagnostics.front().CheckId,
              verify::checks::RecoverInput);
  }
}

TEST_F(ArchiveRecovery, HugeFunctionCountIsClamped) {
  // A corrupt count must not drive allocation; salvage clamps it to the
  // rows the file physically holds and proceeds.
  std::vector<uint8_t> Variant = *Bytes;
  Variant[8] = 0xFF;
  Variant[9] = 0xFF;
  Variant[10] = 0xFF;
  Variant[11] = 0x7F;
  expectSalvageContract(Variant, "huge function count");
  std::vector<uint8_t> Out;
  SalvageReport Report;
  salvageArchive(Variant, Out, Report);
  EXPECT_LE(Report.FunctionsTotal,
            (Bytes->size() - IndexStart) / IndexRowSize);
}

TEST_F(ArchiveRecovery, CorruptIndexRowDropsOnlyThatFunction) {
  const size_t FunctionCount = Original->Functions.size();
  for (size_t F : {size_t(0), FunctionCount / 2, FunctionCount - 1}) {
    size_t Row = IndexStart + F * IndexRowSize;
    std::vector<uint8_t> Variant = *Bytes;
    writeLe64(Variant, Row, Bytes->size() + 1000); // offset past EOF
    std::vector<uint8_t> Out;
    SalvageReport Report;
    if (!salvageArchive(Variant, Out, Report)) {
      // Allowed only if the loss is not isolatable (e.g. the DCG now
      // disagrees); the failure must still be named.
      EXPECT_TRUE(Report.fatal()) << "row " << F;
      continue;
    }
    EXPECT_EQ(Report.FunctionsDropped, 1u) << "row " << F;
    ASSERT_EQ(Report.DroppedFunctions.size(), 1u);
    EXPECT_EQ(Report.DroppedFunctions[0], static_cast<uint32_t>(F));
    verify::DiagnosticEngine Engine;
    verify::runArchiveBytesChecks(Out, Engine);
    EXPECT_TRUE(Engine.clean()) << "row " << F;
  }
  // Extent overflow must not wrap past the bounds check.
  std::vector<uint8_t> Variant = *Bytes;
  writeLe64(Variant, IndexStart, ~uint64_t(0) - 8);
  writeLe64(Variant, IndexStart + 8, 1000);
  expectSalvageContract(Variant, "index extent overflow");
}

TEST_F(ArchiveRecovery, TornDcgIsFatalWhenCallsSurvive) {
  std::vector<uint8_t> Variant = *Bytes;
  writeLe64(Variant, PrefixSize, Bytes->size() + 1); // DCG offset past EOF
  std::vector<uint8_t> Out;
  SalvageReport Report;
  EXPECT_FALSE(salvageArchive(Variant, Out, Report));
  bool SawDcgError = false;
  for (const verify::Diagnostic &D : Report.Diagnostics)
    if (D.CheckId == verify::checks::RecoverDcg &&
        D.Sev == verify::Severity::Error)
      SawDcgError = true;
  EXPECT_TRUE(SawDcgError) << renderSalvageReportText(Report);
}

TEST_F(ArchiveRecovery, BitFlipSweepNeverCrashes) {
  // 300 random single-bit flips anywhere in the file. The contract must
  // hold for every one of them.
  Rng R(4242);
  for (int Case = 0; Case < 300; ++Case) {
    std::vector<uint8_t> Variant = *Bytes;
    size_t At = static_cast<size_t>(R.nextBelow(Variant.size()));
    Variant[At] ^= static_cast<uint8_t>(1u << R.nextBelow(8));
    expectSalvageContract(Variant, "bit flip at byte " +
                                       std::to_string(At));
  }
}

TEST_F(ArchiveRecovery, BlockFlipDropsFunctionAndReportsLoss) {
  // Deterministically corrupt the largest function block so its decode
  // fails (0xFF is an endless varint continuation), and check the loss
  // accounting.
  const size_t FunctionCount = Original->Functions.size();
  size_t Victim = FunctionCount;
  uint64_t VictimLength = 4; // skip trivial (empty-table) blocks
  for (size_t F = 0; F < FunctionCount; ++F) {
    uint64_t Length = readLe64(*Bytes, IndexStart + F * IndexRowSize + 8);
    if (Length > VictimLength) {
      Victim = F;
      VictimLength = Length;
    }
  }
  ASSERT_LT(Victim, FunctionCount) << "fixture has no non-trivial block";
  size_t Row = IndexStart + Victim * IndexRowSize;
  uint64_t Offset = readLe64(*Bytes, Row);
  std::vector<uint8_t> Variant = *Bytes;
  for (uint64_t I = 0; I < VictimLength; ++I)
    Variant[Offset + I] = 0xFF;
  std::vector<uint8_t> Out;
  SalvageReport Report;
  if (salvageArchive(Variant, Out, Report)) {
    EXPECT_GE(Report.FunctionsDropped, 1u);
    EXPECT_GT(Report.CallsLost, 0u);
    bool Named = false;
    for (const verify::Diagnostic &D : Report.Diagnostics)
      if (D.CheckId == verify::checks::RecoverBlock ||
          D.CheckId == verify::checks::RecoverIndexRow)
        Named = true;
    EXPECT_TRUE(Named) << renderSalvageReportText(Report);
  } else {
    EXPECT_TRUE(Report.fatal());
  }
}

TEST_F(ArchiveRecovery, SalvageFileWritesVerifierCleanArchive) {
  std::string In = ::testing::TempDir() + "/salvage_in.twpp";
  std::string Outp = ::testing::TempDir() + "/salvage_out.twpp";
  std::vector<uint8_t> Variant = *Bytes;
  // Tear the tail into the last function block / DCG region.
  Variant.resize(Variant.size() - Variant.size() / 4);
  {
    fault::ScopedFaultSuspend Shield;
    ASSERT_TRUE(writeFileBytes(In, Variant).ok());
  }
  SalvageReport Report;
  if (salvageArchiveFile(In, Outp, Report)) {
    fault::ScopedFaultSuspend Shield;
    std::vector<uint8_t> Salvaged;
    ASSERT_TRUE(readFileBytes(Outp, Salvaged).ok());
    verify::DiagnosticEngine Engine;
    verify::runArchiveBytesChecks(Salvaged, Engine);
    EXPECT_TRUE(Engine.clean())
        << verify::renderDiagnosticsText(Engine);
    EXPECT_EQ(Report.OutputBytes, Salvaged.size());
  } else {
    EXPECT_TRUE(Report.fatal()) << renderSalvageReportText(Report);
  }
  std::remove(In.c_str());
  std::remove(Outp.c_str());
}

TEST_F(ArchiveRecovery, MissingInputFileIsReported) {
  SalvageReport Report;
  EXPECT_FALSE(salvageArchiveFile(::testing::TempDir() +
                                      "/no_such_archive.twpp",
                                  ::testing::TempDir() + "/out.twpp",
                                  Report));
  ASSERT_FALSE(Report.Diagnostics.empty());
  EXPECT_EQ(Report.Diagnostics.front().CheckId,
            verify::checks::RecoverInput);
}

TEST_F(ArchiveRecovery, ReportRenderersAreWellFormed) {
  std::vector<uint8_t> Variant(Bytes->begin(), Bytes->begin() + 40);
  std::vector<uint8_t> Out;
  SalvageReport Report;
  salvageArchive(Variant, Out, Report);
  std::string Text = renderSalvageReportText(Report);
  EXPECT_NE(Text.find("input: "), std::string::npos);
  std::string Json = renderSalvageReportJson(Report);
  EXPECT_NE(Json.find("\"schema\": \"twpp-recover-v1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"salvaged\""), std::string::npos);
  EXPECT_NE(Json.find("\"diagnostics\""), std::string::npos);
}

TEST_F(ArchiveRecovery, DroppedFunctionIdListIsCapped) {
  // Drop every function (torn file past the index): the id list must be
  // bounded even when the count is not.
  size_t IndexEnd = IndexStart + Original->Functions.size() * IndexRowSize;
  std::vector<uint8_t> Variant(Bytes->begin(),
                               Bytes->begin() +
                                   static_cast<long>(IndexEnd));
  std::vector<uint8_t> Out;
  SalvageReport Report;
  salvageArchive(Variant, Out, Report);
  EXPECT_LE(Report.DroppedFunctions.size(),
            SalvageReport::DroppedFunctionIdCap);
}

} // namespace
