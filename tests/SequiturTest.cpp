//===- tests/SequiturTest.cpp - Sequitur baseline --------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "sequitur/Sequitur.h"

#include "TestTraces.h"
#include "trace/UncompactedFile.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

std::vector<uint64_t> buildAndExpand(const std::vector<uint64_t> &Input,
                                     bool &InvariantsOk) {
  SequiturBuilder Builder;
  for (uint64_t Terminal : Input)
    Builder.append(Terminal);
  InvariantsOk = Builder.checkInvariants();
  return Builder.freeze().expand();
}

TEST(SequiturTest, ClassicAbcabcabc) {
  std::vector<uint64_t> Input;
  for (int I = 0; I < 9; ++I)
    Input.push_back(static_cast<uint64_t>("abc"[I % 3]));
  bool InvariantsOk = false;
  EXPECT_EQ(buildAndExpand(Input, InvariantsOk), Input);
  EXPECT_TRUE(InvariantsOk);
}

TEST(SequiturTest, KwKwKPattern) {
  std::vector<uint64_t> Input(64, 7); // aaaa...
  bool InvariantsOk = false;
  EXPECT_EQ(buildAndExpand(Input, InvariantsOk), Input);
  EXPECT_TRUE(InvariantsOk);
}

TEST(SequiturTest, NevillManningExample) {
  // "abcdbcabcd" from the Sequitur paper.
  std::vector<uint64_t> Input = {'a', 'b', 'c', 'd', 'b',
                                 'c', 'a', 'b', 'c', 'd'};
  bool InvariantsOk = false;
  EXPECT_EQ(buildAndExpand(Input, InvariantsOk), Input);
  EXPECT_TRUE(InvariantsOk);
}

TEST(SequiturTest, RepetitiveInputCreatesHierarchy) {
  std::vector<uint64_t> Input;
  for (int I = 0; I < 1024; ++I)
    Input.push_back(static_cast<uint64_t>(I % 2));
  SequiturBuilder Builder;
  for (uint64_t Terminal : Input)
    Builder.append(Terminal);
  FlatGrammar Grammar = Builder.freeze();
  EXPECT_EQ(Grammar.expand(), Input);
  // Hierarchical rules make the grammar logarithmically small.
  EXPECT_LT(Grammar.symbolCount(), 64u);
  EXPECT_GT(Grammar.Rules.size(), 2u);
}

TEST(GrammarCodecTest, RoundTrip) {
  RawTrace Trace = fixtures::figure1Trace();
  FlatGrammar Grammar = buildSequiturGrammar(Trace);
  FlatGrammar Back;
  ASSERT_TRUE(decodeGrammar(encodeGrammar(Grammar), Back));
  EXPECT_EQ(Back, Grammar);
}

TEST(GrammarCodecTest, RejectsBadRuleReference) {
  FlatGrammar Grammar;
  Grammar.Rules.resize(1);
  Grammar.Rules[0].push_back({5, true}); // rule 5 does not exist
  FlatGrammar Back;
  EXPECT_FALSE(decodeGrammar(encodeGrammar(Grammar), Back));
}

TEST(SequiturWppTest, GrammarExpandsToOriginalEventStream) {
  RawTrace Trace = fixtures::figure1Trace();
  FlatGrammar Grammar = buildSequiturGrammar(Trace);

  std::vector<uint64_t> Expanded = Grammar.expand();
  ASSERT_EQ(Expanded.size(), Trace.Events.size());
  for (size_t I = 0; I < Expanded.size(); ++I)
    EXPECT_EQ(tokenToEvent(Expanded[I]), Trace.Events[I]);

  // The grammar is much smaller than the raw stream for this repetitive
  // trace.
  EXPECT_LT(Grammar.symbolCount(), Trace.Events.size());
}

TEST(SequiturWppTest, PerFunctionExtractionMatchesDirectScan) {
  RawTrace Trace = fixtures::figure1Trace();
  FlatGrammar Grammar = buildSequiturGrammar(Trace);

  for (FunctionId F = 0; F < Trace.FunctionCount; ++F) {
    std::vector<std::vector<BlockId>> FromGrammar, FromScan;
    extractFunctionTracesFromGrammar(Grammar, F, FromGrammar);
    extractFunctionTraces(Trace, F, FromScan);
    EXPECT_EQ(FromGrammar, FromScan) << "function " << F;
  }
}

/// Property sweep: Sequitur is lossless and maintains its invariants on
/// random strings over small alphabets (worst case for digram churn).
class SequiturProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SequiturProperty, RandomStrings) {
  Rng R(GetParam());
  for (int Iter = 0; Iter < 8; ++Iter) {
    size_t Length = 1 + R.nextBelow(3000);
    uint64_t Alphabet = 2 + R.nextBelow(6);
    std::vector<uint64_t> Input;
    Input.reserve(Length);
    for (size_t I = 0; I < Length; ++I)
      Input.push_back(R.nextBelow(Alphabet));
    bool InvariantsOk = false;
    ASSERT_EQ(buildAndExpand(Input, InvariantsOk), Input)
        << "seed " << GetParam() << " iter " << Iter;
    EXPECT_TRUE(InvariantsOk) << "seed " << GetParam() << " iter " << Iter;
  }
}

TEST_P(SequiturProperty, RandomTraceRoundTrip) {
  RawTrace Trace = fixtures::randomTrace(GetParam(), 6, 5000);
  FlatGrammar Grammar = buildSequiturGrammar(Trace);
  std::vector<uint64_t> Expanded = Grammar.expand();
  ASSERT_EQ(Expanded.size(), Trace.Events.size());
  for (size_t I = 0; I < Expanded.size(); ++I)
    ASSERT_EQ(tokenToEvent(Expanded[I]), Trace.Events[I]) << "at " << I;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequiturProperty,
                         ::testing::Values(7, 8, 9, 10, 11, 12, 13, 14));

} // namespace
