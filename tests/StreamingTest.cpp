//===- tests/StreamingTest.cpp - online compaction -------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Streaming.h"

#include "TestTraces.h"
#include "runtime/Interpreter.h"
#include "lang/Lower.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

void feed(StreamingCompactor &Sink, const RawTrace &Trace) {
  for (const TraceEvent &Event : Trace.Events) {
    switch (Event.EventKind) {
    case TraceEvent::Kind::Enter:
      Sink.onEnter(Event.Id);
      break;
    case TraceEvent::Kind::Block:
      Sink.onBlock(Event.Id);
      break;
    case TraceEvent::Kind::Exit:
      Sink.onExit();
      break;
    }
  }
}

TEST(StreamingTest, MatchesOfflinePartition) {
  RawTrace Trace = fixtures::figure1Trace();
  StreamingCompactor Sink(Trace.FunctionCount);
  feed(Sink, Trace);
  ASSERT_TRUE(Sink.balanced());
  EXPECT_EQ(Sink.takePartitioned(), partitionWpp(Trace));
}

TEST(StreamingTest, TakeCompactedMatchesFullPipeline) {
  RawTrace Trace = fixtures::randomTrace(777);
  StreamingCompactor Sink(Trace.FunctionCount);
  feed(Sink, Trace);
  EXPECT_EQ(Sink.takeCompacted(), compactWpp(Trace));
}

TEST(StreamingTest, FrameTrackingAndReuse) {
  StreamingCompactor Sink(2);
  EXPECT_TRUE(Sink.balanced());
  Sink.onEnter(0);
  Sink.onBlock(1);
  Sink.onEnter(1);
  EXPECT_EQ(Sink.openFrames(), 2u);
  Sink.onExit();
  EXPECT_EQ(Sink.openFrames(), 1u);
  Sink.onExit();
  ASSERT_TRUE(Sink.balanced());
  PartitionedWpp First = Sink.takePartitioned();
  EXPECT_EQ(First.Dcg.Nodes.size(), 2u);

  // The compactor is reusable after take.
  Sink.onEnter(1);
  Sink.onBlock(5);
  Sink.onExit();
  PartitionedWpp Second = Sink.takePartitioned();
  EXPECT_EQ(Second.Dcg.Nodes.size(), 1u);
  EXPECT_EQ(Second.Functions[1].UniqueTraces[0], (PathTrace{5}));
}

TEST(StreamingTest, InterpreterCanStreamDirectly) {
  // The instrumented-execution deployment mode: the interpreter writes
  // into the online compactor; no raw trace ever exists.
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn f(n) {"
                             "  t = 0; i = 0;"
                             "  while (i < n) { t = t + i; i = i + 1; }"
                             "  return t;"
                             "}"
                             "fn main() {"
                             "  k = 0;"
                             "  while (k < 10) {"
                             "    r = call f(k % 3); print r; k = k + 1;"
                             "  }"
                             "}",
                             M, Error))
      << Error;

  StreamingCompactor Streaming(
      static_cast<uint32_t>(M.Functions.size()));
  Interpreter Interp(M, Streaming);
  ExecutionResult Result = Interp.run({});
  ASSERT_TRUE(Result.Completed) << Result.Error;
  ASSERT_TRUE(Streaming.balanced());
  TwppWpp Online = Streaming.takeCompacted();

  ExecutionResult Result2;
  RawTrace Trace = traceExecution(M, {}, Result2);
  EXPECT_EQ(Online, compactWpp(Trace));
  EXPECT_EQ(reconstructRawTrace(Online), Trace);
}

/// Property: streaming == offline on random traces.
class StreamingEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingEquivalence, RandomTraces) {
  RawTrace Trace = fixtures::randomTrace(GetParam(), 7, 5000);
  StreamingCompactor Sink(Trace.FunctionCount);
  feed(Sink, Trace);
  EXPECT_EQ(Sink.takePartitioned(), partitionWpp(Trace));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingEquivalence,
                         ::testing::Values(71, 72, 73, 74, 75, 76));

} // namespace
