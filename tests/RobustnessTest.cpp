//===- tests/RobustnessTest.cpp - malformed-input fuzzing ------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Decoder robustness: every on-disk format must reject corrupt, truncated
// or random bytes gracefully (return false), never crash or hang. These
// sweeps mutate valid encodings and feed pure noise to every decoder.
//
//===----------------------------------------------------------------------===//

#include "TestTraces.h"
#include "sequitur/FlatGrammar.h"
#include "sequitur/Sequitur.h"
#include "support/FileIO.h"
#include "support/LZW.h"
#include "support/Random.h"
#include "trace/UncompactedFile.h"
#include "wpp/Archive.h"
#include "wpp/DynamicCallGraph.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

std::vector<uint8_t> corrupt(std::vector<uint8_t> Bytes, Rng &R) {
  if (Bytes.empty())
    return Bytes;
  switch (R.nextBelow(4)) {
  case 0: // flip random byte
    Bytes[R.nextBelow(Bytes.size())] ^=
        static_cast<uint8_t>(1 + R.nextBelow(255));
    break;
  case 1: // truncate
    Bytes.resize(R.nextBelow(Bytes.size()));
    break;
  case 2: // duplicate a tail
    Bytes.insert(Bytes.end(), Bytes.begin(),
                 Bytes.begin() + R.nextBelow(Bytes.size()));
    break;
  default: // splice random garbage
    for (int I = 0; I < 8; ++I)
      Bytes[R.nextBelow(Bytes.size())] = static_cast<uint8_t>(R.next());
    break;
  }
  return Bytes;
}

std::vector<uint8_t> randomBytes(Rng &R, size_t MaxLength) {
  std::vector<uint8_t> Bytes(R.nextBelow(MaxLength));
  for (uint8_t &B : Bytes)
    B = static_cast<uint8_t>(R.next());
  return Bytes;
}

class DecoderFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderFuzz, UncompactedTraceDecoder) {
  Rng R(GetParam());
  std::vector<uint8_t> Valid =
      encodeUncompactedTrace(fixtures::randomTrace(GetParam()));
  for (int I = 0; I < 60; ++I) {
    RawTrace Out;
    decodeUncompactedTrace(corrupt(Valid, R), Out); // must not crash
    decodeUncompactedTrace(randomBytes(R, 200), Out);
  }
}

TEST_P(DecoderFuzz, DcgDecoder) {
  Rng R(GetParam() ^ 0x1111);
  std::vector<uint8_t> Valid =
      encodeDcg(partitionWpp(fixtures::randomTrace(GetParam())).Dcg);
  for (int I = 0; I < 60; ++I) {
    DynamicCallGraph Out;
    decodeDcg(corrupt(Valid, R), Out);
    decodeDcg(randomBytes(R, 200), Out);
  }
}

TEST_P(DecoderFuzz, FunctionTableDecoder) {
  Rng R(GetParam() ^ 0x2222);
  TwppWpp Compacted = compactWpp(fixtures::randomTrace(GetParam()));
  std::vector<uint8_t> Valid =
      encodeTwppFunctionTable(Compacted.Functions[0]);
  for (int I = 0; I < 60; ++I) {
    TwppFunctionTable Out;
    decodeTwppFunctionTable(corrupt(Valid, R), Out);
    decodeTwppFunctionTable(randomBytes(R, 300), Out);
  }
}

TEST_P(DecoderFuzz, GrammarDecoder) {
  Rng R(GetParam() ^ 0x3333);
  std::vector<uint8_t> Valid =
      encodeGrammar(buildSequiturGrammar(fixtures::randomTrace(GetParam())));
  for (int I = 0; I < 60; ++I) {
    FlatGrammar Out;
    decodeGrammar(corrupt(Valid, R), Out);
    decodeGrammar(randomBytes(R, 200), Out);
  }
}

TEST_P(DecoderFuzz, LzwDecoder) {
  Rng R(GetParam() ^ 0x4444);
  std::vector<uint8_t> Payload = randomBytes(R, 500);
  std::vector<uint8_t> Valid = lzwCompress(Payload);
  for (int I = 0; I < 60; ++I) {
    std::vector<uint8_t> Out;
    lzwDecompress(corrupt(Valid, R), Out);
    lzwDecompress(randomBytes(R, 200), Out);
  }
}

TEST_P(DecoderFuzz, ArchiveReaderOnCorruptFiles) {
  Rng R(GetParam() ^ 0x5555);
  TwppWpp Compacted = compactWpp(fixtures::randomTrace(GetParam()));
  std::vector<uint8_t> Valid = encodeArchive(Compacted);
  std::string Path = ::testing::TempDir() + "/twpp_fuzz_" +
                     std::to_string(GetParam()) + ".twpp";
  for (int I = 0; I < 25; ++I) {
    ASSERT_TRUE(writeFileBytes(Path, corrupt(Valid, R)));
    ArchiveReader Reader;
    if (Reader.open(Path)) {
      // A luckily-still-valid header: reads must still not crash.
      TwppWpp Out;
      Reader.readAll(Out);
      DynamicCallGraph Dcg;
      Reader.readDcg(Dcg);
      TwppFunctionTable Table;
      if (Reader.functionCount() > 0)
        Reader.extractFunction(0, Table);
    }
  }
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Values(61, 62, 63, 64, 65, 66));

TEST(SignedSeriesFuzz, RandomValueStreams) {
  Rng R(99);
  for (int I = 0; I < 300; ++I) {
    std::vector<int64_t> Values(R.nextBelow(12));
    for (int64_t &V : Values)
      V = static_cast<int64_t>(R.nextBelow(41)) - 20;
    TimestampSet Out;
    if (TimestampSet::decodeSigned(Values, Out)) {
      // Anything accepted must re-encode to an equivalent set.
      TimestampSet Back;
      ASSERT_TRUE(TimestampSet::decodeSigned(Out.encodeSigned(), Back));
      EXPECT_EQ(Back.toVector(), Out.toVector());
    }
  }
}

} // namespace
