//===- tests/DumpTest.cpp - dot / summary dumps ----------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Dump.h"

#include "TestTraces.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

TEST(DumpTest, DcgDotContainsNodesAndAnchors) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  std::string Dot = dumpDcgDot(Compacted.Dcg);
  EXPECT_NE(Dot.find("digraph dcg"), std::string::npos);
  EXPECT_NE(Dot.find("f0 t0"), std::string::npos); // main's node
  EXPECT_NE(Dot.find("f1 t"), std::string::npos);  // a call to f
  EXPECT_NE(Dot.find("@3"), std::string::npos);    // first call anchor
  EXPECT_NE(Dot.find("root -> n0"), std::string::npos);
  EXPECT_EQ(Dot.find("elided"), std::string::npos);
}

TEST(DumpTest, DcgDotElidesBeyondLimit) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  std::string Dot = dumpDcgDot(Compacted.Dcg, /*MaxNodes=*/2);
  EXPECT_NE(Dot.find("elided"), std::string::npos);
  EXPECT_NE(Dot.find("+4 more"), std::string::npos);
}

TEST(DumpTest, AnnotatedCfgDotShowsSeries) {
  AnnotatedDynamicCfg Cfg =
      buildAnnotatedCfgFromSequence({1, 2, 2, 2, 2, 2, 6});
  std::string Dot = dumpAnnotatedCfgDot(Cfg, "paper");
  EXPECT_NE(Dot.find("digraph \"paper\""), std::string::npos);
  EXPECT_NE(Dot.find("T=2:6"), std::string::npos); // block 2's series
  EXPECT_NE(Dot.find("T=1"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}

TEST(DumpTest, SummaryListsCalledFunctions) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  std::string Summary = dumpSummary(Compacted);
  EXPECT_NE(Summary.find("functions: 2"), std::string::npos);
  EXPECT_NE(Summary.find("f0: 1 calls, 1 unique traces"),
            std::string::npos);
  EXPECT_NE(Summary.find("f1: 5 calls, 2 unique traces"),
            std::string::npos);
}

} // namespace
