//===- tests/SlicingTest.cpp - dynamic slicing & currency ------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "slicing/Currency.h"
#include "slicing/DynamicSlicer.h"
#include "slicing/SliceProgram.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace twpp;

namespace {

TEST(SliceProgramTest, Figure10TraceAndTimestamps) {
  Figure10Program Fig = buildFigure10Program();
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Fig.Trace);
  // Paper Figure 10 annotations: 4 -> 4:28:8, 9 -> 8:24:8, 7 -> {7,23},
  // 8 -> {15}, 13 -> {29}, 14 -> {30}.
  auto TimesOf = [&Cfg](BlockId Stmt) {
    return Cfg.Nodes[Cfg.nodeIndexOf(Stmt)].Times;
  };
  EXPECT_EQ(TimesOf(4).encodeSigned(), (std::vector<int64_t>{4, 28, -8}));
  EXPECT_EQ(TimesOf(9).encodeSigned(), (std::vector<int64_t>{8, 24, -8}));
  EXPECT_EQ(TimesOf(7).toVector(), (std::vector<Timestamp>{7, 23}));
  EXPECT_EQ(TimesOf(8).toVector(), (std::vector<Timestamp>{15}));
  EXPECT_EQ(TimesOf(13).toVector(), (std::vector<Timestamp>{29}));
  EXPECT_EQ(TimesOf(14).toVector(), (std::vector<Timestamp>{30}));
}

TEST(SliceProgramTest, StaticDataDepsIncludeLoopCarried) {
  Figure10Program Fig = buildFigure10Program();
  std::vector<DataDepEdge> Edges = computeStaticDataDeps(Fig.Program);
  auto Has = [&Edges](BlockId Use, BlockId Def, VarId Var) {
    return std::find(Edges.begin(), Edges.end(),
                     DataDepEdge{Use, Def, Var}) != Edges.end();
  };
  // 13 (Z=Z+J) statically sees J from both 3 (J=0) and 11 (J=I).
  EXPECT_TRUE(Has(13, 3, Fig.VarJ));
  EXPECT_TRUE(Has(13, 11, Fig.VarJ));
  // 4 (while I<=N) sees I from 2 and from 12 (loop carried).
  EXPECT_TRUE(Has(4, 2, Fig.VarI));
  EXPECT_TRUE(Has(4, 12, Fig.VarI));
  // 9 (Z=f3(Y)) sees Y from both arms.
  EXPECT_TRUE(Has(9, 7, Fig.VarY));
  EXPECT_TRUE(Has(9, 8, Fig.VarY));
  // 13's Z def does not reach itself as a use of 14... (14 uses Z from 13).
  EXPECT_TRUE(Has(14, 13, Fig.VarZ));
}

TEST(SlicingTest, PaperApproach1) {
  // A1 = static slice over executed nodes = everything except 10.
  Figure10Program Fig = buildFigure10Program();
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Fig.Trace);
  SliceResult Slice =
      sliceApproach1(Fig.Program, Cfg, Fig.Breakpoint, Fig.VarZ);
  EXPECT_EQ(Slice.Stmts, (std::vector<BlockId>{1, 2, 3, 4, 5, 6, 7, 8, 9,
                                               11, 12, 13, 14}));
}

TEST(SlicingTest, PaperApproach2) {
  // A2 = executed-edge traversal = everything except 3 and 10.
  Figure10Program Fig = buildFigure10Program();
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Fig.Trace);
  SliceResult Slice =
      sliceApproach2(Fig.Program, Cfg, Fig.Breakpoint, Fig.VarZ);
  EXPECT_EQ(Slice.Stmts, (std::vector<BlockId>{1, 2, 4, 5, 6, 7, 8, 9, 11,
                                               12, 13, 14}));
}

TEST(SlicingTest, PaperApproach3) {
  // A3 = exact instances = everything except 3, 8 and 10.
  Figure10Program Fig = buildFigure10Program();
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Fig.Trace);
  SliceResult Slice = sliceApproach3(Fig.Program, Cfg, Fig.Breakpoint,
                                     Fig.VarZ, /*Time=*/30);
  EXPECT_EQ(Slice.Stmts, (std::vector<BlockId>{1, 2, 4, 5, 6, 7, 9, 11, 12,
                                               13, 14}));
}

TEST(SlicingTest, SlicesAreNested) {
  // A3 subset-of A2 subset-of A1 on the paper example.
  Figure10Program Fig = buildFigure10Program();
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Fig.Trace);
  SliceResult A1 =
      sliceApproach1(Fig.Program, Cfg, Fig.Breakpoint, Fig.VarZ);
  SliceResult A2 =
      sliceApproach2(Fig.Program, Cfg, Fig.Breakpoint, Fig.VarZ);
  SliceResult A3 = sliceApproach3(Fig.Program, Cfg, Fig.Breakpoint,
                                  Fig.VarZ, 30);
  EXPECT_TRUE(std::includes(A1.Stmts.begin(), A1.Stmts.end(),
                            A2.Stmts.begin(), A2.Stmts.end()));
  EXPECT_TRUE(std::includes(A2.Stmts.begin(), A2.Stmts.end(),
                            A3.Stmts.begin(), A3.Stmts.end()));
}

TEST(InstanceSearchTest, FindLastDefInstance) {
  Figure10Program Fig = buildFigure10Program();
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Fig.Trace);
  BlockId DefStmt;
  Timestamp DefTime;
  // Z before t=30 (breakpoint): defined by 13 at t=29.
  ASSERT_TRUE(findLastDefInstance(Fig.Program, Cfg, Fig.VarZ, 30, DefStmt,
                                  DefTime));
  EXPECT_EQ(DefStmt, 13u);
  EXPECT_EQ(DefTime, 29u);
  // Y before t=24 (9's last instance): defined by 7 at t=23.
  ASSERT_TRUE(findLastDefInstance(Fig.Program, Cfg, Fig.VarY, 24, DefStmt,
                                  DefTime));
  EXPECT_EQ(DefStmt, 7u);
  EXPECT_EQ(DefTime, 23u);
  // Y before t=16 (9's second instance): defined by 8 at t=15.
  ASSERT_TRUE(findLastDefInstance(Fig.Program, Cfg, Fig.VarY, 16, DefStmt,
                                  DefTime));
  EXPECT_EQ(DefStmt, 8u);
  // Nothing defines N after statement 1; search before t=1 fails.
  EXPECT_FALSE(findLastDefInstance(Fig.Program, Cfg, Fig.VarN, 1, DefStmt,
                                   DefTime));
}

TEST(InstanceSearchTest, FindLastInstanceOf) {
  Figure10Program Fig = buildFigure10Program();
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Fig.Trace);
  Timestamp T;
  ASSERT_TRUE(findLastInstanceOf(Cfg, 4, 29, T)); // before Z=Z+J
  EXPECT_EQ(T, 28u);
  ASSERT_TRUE(findLastInstanceOf(Cfg, 4, 28, T)); // strictly before
  EXPECT_EQ(T, 20u);
  EXPECT_FALSE(findLastInstanceOf(Cfg, 4, 4, T));
  EXPECT_FALSE(findLastInstanceOf(Cfg, 13, 29, T));
}

/// Brute-force reference slicers over the raw statement trace.
struct ReferenceSlices {
  std::set<BlockId> A2, A3;
};

ReferenceSlices referenceSlices(const SliceProgram &Program,
                                const std::vector<BlockId> &Trace,
                                BlockId Criterion, VarId Var,
                                Timestamp Time) {
  // Instance-level dependence graph by direct scan.
  struct Instance {
    BlockId Stmt;
    std::vector<size_t> DataDeps; // instance indices
    long CtrlDep = -1;
  };
  std::vector<Instance> Instances;
  for (size_t I = 0; I < Trace.size(); ++I) {
    Instance Inst;
    Inst.Stmt = Trace[I];
    const SliceStmt &S = Program.stmt(Trace[I]);
    for (VarId Use : S.Uses) {
      for (size_t J = I; J-- > 0;) {
        if (Program.stmt(Trace[J]).Def == Use) {
          Inst.DataDeps.push_back(J);
          break;
        }
      }
    }
    if (S.ControlDep != 0)
      for (size_t J = I; J-- > 0;)
        if (Trace[J] == S.ControlDep) {
          Inst.CtrlDep = static_cast<long>(J);
          break;
        }
    Instances.push_back(std::move(Inst));
  }

  ReferenceSlices Ref;
  // A3: closure over instances from the criterion instance's var def.
  {
    std::set<size_t> Visited;
    std::vector<size_t> Work;
    Ref.A3.insert(Criterion);
    size_t CriterionIdx = Time - 1;
    // Seed: def of Var before criterion + criterion's control dep.
    for (size_t J = CriterionIdx; J-- > 0;)
      if (Program.stmt(Trace[J]).Def == Var) {
        Work.push_back(J);
        break;
      }
    if (Instances[CriterionIdx].CtrlDep >= 0)
      Work.push_back(static_cast<size_t>(Instances[CriterionIdx].CtrlDep));
    while (!Work.empty()) {
      size_t I = Work.back();
      Work.pop_back();
      if (!Visited.insert(I).second)
        continue;
      Ref.A3.insert(Trace[I]);
      for (size_t D : Instances[I].DataDeps)
        Work.push_back(D);
      if (Instances[I].CtrlDep >= 0)
        Work.push_back(static_cast<size_t>(Instances[I].CtrlDep));
    }
  }
  // A2: edge-level closure. Collect exercised stmt-level edges, then
  // closure over statements.
  {
    std::set<std::pair<BlockId, BlockId>> Edges; // use -> def (incl ctrl)
    for (const Instance &Inst : Instances) {
      for (size_t D : Inst.DataDeps)
        Edges.insert({Inst.Stmt, Trace[D]});
      if (Inst.CtrlDep >= 0)
        Edges.insert({Inst.Stmt, Trace[static_cast<size_t>(Inst.CtrlDep)]});
    }
    // Criterion edges: via Var from *every* instance of the criterion
    // (approach 2 works at node granularity), plus its control dep.
    std::vector<BlockId> Work;
    Ref.A2.insert(Criterion);
    size_t CriterionIdx = Time - 1;
    for (size_t I = 0; I < Trace.size(); ++I) {
      if (Trace[I] != Criterion)
        continue;
      for (size_t J = I; J-- > 0;)
        if (Program.stmt(Trace[J]).Def == Var) {
          Work.push_back(Trace[J]);
          break;
        }
    }
    if (Instances[CriterionIdx].CtrlDep >= 0)
      Work.push_back(Trace[static_cast<size_t>(
          Instances[CriterionIdx].CtrlDep)]);
    while (!Work.empty()) {
      BlockId S = Work.back();
      Work.pop_back();
      if (!Ref.A2.insert(S).second)
        continue;
      for (const auto &[Use, Def] : Edges)
        if (Use == S)
          Work.push_back(Def);
    }
  }
  return Ref;
}

/// Random structured programs: compare slicer output against the
/// brute-force reference.
class SlicerOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlicerOracle, MatchesBruteForce) {
  Rng R(GetParam());
  for (int Iter = 0; Iter < 12; ++Iter) {
    // Random straight-line-with-loop program over 8 statements:
    // statement i defines variable (i % 4) and uses 1-2 random vars.
    SliceProgram Program;
    uint32_t N = 8;
    Program.Stmts.resize(N);
    Program.Succs.resize(N);
    for (uint32_t I = 0; I < N; ++I) {
      SliceStmt &S = Program.Stmts[I];
      S.Def = static_cast<VarId>(R.nextBelow(4));
      size_t Uses = R.nextBelow(3);
      for (size_t U = 0; U < Uses; ++U)
        S.Uses.push_back(static_cast<VarId>(R.nextBelow(4)));
      std::sort(S.Uses.begin(), S.Uses.end());
      S.Uses.erase(std::unique(S.Uses.begin(), S.Uses.end()), S.Uses.end());
      if (I + 1 < N)
        Program.Succs[I] = {I + 2}; // linear chain (ids are 1-based)
    }
    // Random trace: repeated passes over a random subsequence.
    std::vector<BlockId> Trace;
    size_t Passes = 1 + R.nextBelow(5);
    for (size_t P = 0; P < Passes; ++P)
      for (uint32_t I = 0; I < N; ++I)
        if (R.nextBool(0.7))
          Trace.push_back(I + 1);
    if (Trace.empty())
      continue;

    BlockId Criterion = Trace.back();
    Timestamp Time = static_cast<Timestamp>(Trace.size());
    VarId Var = Program.stmt(Criterion).Uses.empty()
                    ? 0
                    : Program.stmt(Criterion).Uses[0];

    AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Trace);
    ReferenceSlices Ref =
        referenceSlices(Program, Trace, Criterion, Var, Time);

    SliceResult A2 = sliceApproach2(Program, Cfg, Criterion, Var);
    SliceResult A3 = sliceApproach3(Program, Cfg, Criterion, Var, Time);
    EXPECT_EQ(std::set<BlockId>(A2.Stmts.begin(), A2.Stmts.end()), Ref.A2)
        << "seed " << GetParam() << " iter " << Iter;
    EXPECT_EQ(std::set<BlockId>(A3.Stmts.begin(), A3.Stmts.end()), Ref.A3)
        << "seed " << GetParam() << " iter " << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlicerOracle,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

TEST(CurrencyTest, PaperFigure12) {
  // Diamond CFG 1 -> {2, 4} -> 3. Original: defs 1 and 2 of X both in
  // block 1. Optimized (after PDE): def 2 moved to block 2.
  CurrencyProblem Problem;
  Problem.OriginalDefs = {{1, 1, 0}, {2, 1, 1}};
  Problem.OptimizedDefs = {{1, 1, 0}, {2, 2, 0}};

  // Path 1.2.3: the moved assignment executed -> X is current.
  AnnotatedDynamicCfg Left = buildAnnotatedCfgFromSequence({1, 2, 3});
  EXPECT_EQ(checkCurrency(Left, 3, Problem), Currency::Current);

  // Path 1.4.3: optimized execution still holds def 1's value while the
  // unoptimized program would have def 2's -> non-current.
  AnnotatedDynamicCfg Right = buildAnnotatedCfgFromSequence({1, 4, 3});
  EXPECT_EQ(checkCurrency(Right, 3, Problem), Currency::NonCurrent);
}

TEST(CurrencyTest, NoDefsEitherSideIsCurrent) {
  CurrencyProblem Problem;
  Problem.OriginalDefs = {{1, 9, 0}};
  Problem.OptimizedDefs = {{1, 9, 0}};
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence({1, 2, 3});
  EXPECT_EQ(checkCurrency(Cfg, 3, Problem), Currency::Current);
}

TEST(CurrencyTest, IntraBlockOrdinalDecides) {
  // Two defs in the same block: the later ordinal is the reaching one.
  CurrencyProblem Problem;
  Problem.OriginalDefs = {{1, 1, 0}, {2, 1, 5}};
  Problem.OptimizedDefs = {{1, 1, 0}, {2, 1, 5}};
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence({1, 2});
  EXPECT_EQ(checkCurrency(Cfg, 2, Problem), Currency::Current);
}

} // namespace
