//===- tests/DataflowTest.cpp - profile-limited GEN-KILL analysis ----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "dataflow/AnnotatedCfg.h"
#include "dataflow/Query.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

/// The paper's Figure 9 loop trace: 100 iterations, block 1 loads (GEN),
/// block 6 stores (KILL), block 4 re-loads (the query point). Paths:
/// (1.2.3.4.5) x30, (1.2.7.4.5) x30, (1.6.7.5) x40 — matching the stated
/// frequencies 1:100, 4:60, 6:40.
std::vector<BlockId> figure9Sequence() {
  std::vector<BlockId> Seq;
  for (int I = 0; I < 30; ++I)
    for (BlockId B : {1, 2, 3, 4, 5})
      Seq.push_back(B);
  for (int I = 0; I < 30; ++I)
    for (BlockId B : {1, 2, 7, 4, 5})
      Seq.push_back(B);
  for (int I = 0; I < 40; ++I)
    for (BlockId B : {1, 6, 7, 5})
      Seq.push_back(B);
  return Seq;
}

BlockEffect figure9Effect(BlockId Block) {
  if (Block == 1)
    return BlockEffect::Gen; // 1_Load makes the value available
  if (Block == 6)
    return BlockEffect::Kill; // 6_Store kills it
  return BlockEffect::Transparent;
}

TEST(AnnotatedCfgTest, BuildFromSequence) {
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence({1, 2, 3, 2, 3, 4});
  ASSERT_EQ(Cfg.Nodes.size(), 4u);
  EXPECT_EQ(Cfg.Length, 6u);
  size_t N2 = Cfg.nodeIndexOf(2);
  ASSERT_NE(N2, AnnotatedDynamicCfg::npos);
  EXPECT_EQ(Cfg.Nodes[N2].Times.toVector(), (std::vector<Timestamp>{2, 4}));
  // Preds of 2 are 1 and 3.
  std::vector<BlockId> PredHeads;
  for (uint32_t P : Cfg.Nodes[N2].Preds)
    PredHeads.push_back(Cfg.Nodes[P].Head);
  EXPECT_EQ(PredHeads, (std::vector<BlockId>{1, 3}));
  EXPECT_EQ(Cfg.nodeAt(4), N2);
  EXPECT_EQ(Cfg.nodeAt(0), AnnotatedDynamicCfg::npos);
  EXPECT_EQ(Cfg.nodeAt(7), AnnotatedDynamicCfg::npos);
}

TEST(AnnotatedCfgTest, DbbExpansionCarried) {
  // Compacted trace with a dictionary: head 2 expands to 2.3.4.
  DbbDictionary Dict;
  Dict.Chains.push_back({2, 3, 4});
  TwppTrace Trace = twppFromBlockSequence({1, 2, 2, 6});
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfg(Trace, Dict);
  size_t N2 = Cfg.nodeIndexOf(2);
  ASSERT_NE(N2, AnnotatedDynamicCfg::npos);
  EXPECT_EQ(Cfg.Nodes[N2].StaticBlocks, (std::vector<BlockId>{2, 3, 4}));
}

TEST(ChainEffectTest, LastNonTransparentWins) {
  auto Effect = [](BlockId B) {
    if (B == 1)
      return BlockEffect::Gen;
    if (B == 2)
      return BlockEffect::Kill;
    return BlockEffect::Transparent;
  };
  EXPECT_EQ(chainEffect({1, 3}, Effect), BlockEffect::Gen);
  EXPECT_EQ(chainEffect({1, 2}, Effect), BlockEffect::Kill);
  EXPECT_EQ(chainEffect({2, 1}, Effect), BlockEffect::Gen);
  EXPECT_EQ(chainEffect({3, 4}, Effect), BlockEffect::Transparent);
  EXPECT_EQ(chainEffect({}, Effect), BlockEffect::Transparent);
}

TEST(QueryTest, Figure9LoadIsAlwaysRedundant) {
  AnnotatedDynamicCfg Cfg =
      buildAnnotatedCfgFromSequence(figure9Sequence());
  FactFrequency Freq = factFrequency(Cfg, 4, figure9Effect);

  // 4_Load executes 60 times and the loaded value is available every
  // time: degree of redundancy 100% (paper Figure 9).
  EXPECT_EQ(Freq.Total, 60u);
  EXPECT_EQ(Freq.Holds, 60u);
  EXPECT_DOUBLE_EQ(Freq.ratio(), 1.0);
  // Demand-driven propagation needs only a handful of queries despite
  // the 100 loop iterations (the paper reports 6).
  EXPECT_LE(Freq.QueriesGenerated, 8u);
  EXPECT_GE(Freq.QueriesGenerated, 3u);
}

TEST(QueryTest, KillOnPathResolvesFalse) {
  // 1(G) 2 4 | 1 6(K) 4 | 1 2 4 : query at 4 -> true, false, true.
  std::vector<BlockId> Seq = {1, 2, 4, 1, 6, 4, 1, 2, 4};
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Seq);
  size_t N4 = Cfg.nodeIndexOf(4);
  QueryResult Result = propagateBackward(Cfg, N4, Cfg.Nodes[N4].Times,
                                         figure9Effect);
  EXPECT_EQ(Result.True.toVector(), (std::vector<Timestamp>{3, 9}));
  EXPECT_EQ(Result.False.toVector(), (std::vector<Timestamp>{6}));
  EXPECT_TRUE(Result.AtEntry.empty());
}

TEST(QueryTest, EntryReachedUnresolved) {
  // No GEN before the first execution of 4.
  std::vector<BlockId> Seq = {2, 4, 1, 4};
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Seq);
  size_t N4 = Cfg.nodeIndexOf(4);
  QueryResult Result = propagateBackward(Cfg, N4, Cfg.Nodes[N4].Times,
                                         figure9Effect);
  EXPECT_EQ(Result.True.toVector(), (std::vector<Timestamp>{4}));
  EXPECT_EQ(Result.AtEntry.toVector(), (std::vector<Timestamp>{2}));
  EXPECT_TRUE(Result.False.empty());
}

TEST(QueryTest, QueryOnSubsetOfTimestamps) {
  std::vector<BlockId> Seq = {1, 2, 4, 1, 6, 4, 1, 2, 4};
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Seq);
  size_t N4 = Cfg.nodeIndexOf(4);
  // Only ask about the middle instance (t=6).
  QueryResult Result = propagateBackward(
      Cfg, N4, TimestampSet::fromSorted({6}), figure9Effect);
  EXPECT_TRUE(Result.True.empty());
  EXPECT_EQ(Result.False.toVector(), (std::vector<Timestamp>{6}));
}

TEST(QueryTest, EmptyQueryShortCircuits) {
  std::vector<BlockId> Seq = {1, 2, 4};
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Seq);
  QueryResult Result = propagateBackward(Cfg, Cfg.nodeIndexOf(4),
                                         TimestampSet(), figure9Effect);
  EXPECT_EQ(Result.QueriesGenerated, 0u);
  EXPECT_TRUE(Result.True.empty() && Result.False.empty());
}

/// Oracle check: propagate on random traces, compare against a direct
/// trace walk per instance.
class QueryOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryOracle, MatchesDirectTraceWalk) {
  Rng R(GetParam());
  for (int Iter = 0; Iter < 20; ++Iter) {
    // Random walk over blocks 1..8; 1 gens, 6 kills.
    size_t Length = 3 + R.nextBelow(400);
    std::vector<BlockId> Seq;
    for (size_t I = 0; I < Length; ++I)
      Seq.push_back(1 + static_cast<BlockId>(R.nextBelow(8)));
    BlockId Query = 1 + static_cast<BlockId>(R.nextBelow(8));
    AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Seq);
    size_t Node = Cfg.nodeIndexOf(Query);
    if (Node == AnnotatedDynamicCfg::npos)
      continue;
    QueryResult Result = propagateBackward(Cfg, Node, Cfg.Nodes[Node].Times,
                                           figure9Effect);

    for (size_t I = 0; I < Seq.size(); ++I) {
      if (Seq[I] != Query)
        continue;
      Timestamp T = static_cast<Timestamp>(I + 1);
      // Walk backwards to find the last gen/kill before position I.
      int Verdict = 0; // 0 entry, 1 true, -1 false
      for (size_t J = I; J-- > 0;) {
        if (figure9Effect(Seq[J]) == BlockEffect::Gen) {
          Verdict = 1;
          break;
        }
        if (figure9Effect(Seq[J]) == BlockEffect::Kill) {
          Verdict = -1;
          break;
        }
      }
      EXPECT_EQ(Result.True.contains(T), Verdict == 1) << "t=" << T;
      EXPECT_EQ(Result.False.contains(T), Verdict == -1) << "t=" << T;
      EXPECT_EQ(Result.AtEntry.contains(T), Verdict == 0) << "t=" << T;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryOracle,
                         ::testing::Values(3, 6, 9, 12, 15, 18, 21, 24));

} // namespace
