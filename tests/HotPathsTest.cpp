//===- tests/HotPathsTest.cpp - hot path queries ---------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/HotPaths.h"

#include "TestTraces.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

TEST(HotPathsTest, RanksByUseCount) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  std::vector<HotPath> Paths = hotPathsOf(Compacted.Functions[1]);
  ASSERT_EQ(Paths.size(), 2u);
  // Path2 (through blocks 7.8.9) was used 3 times, path1 twice.
  EXPECT_EQ(Paths[0].UseCount, 3u);
  EXPECT_EQ(Paths[1].UseCount, 2u);
  EXPECT_EQ(Paths[0].Blocks[2], 7u);
  EXPECT_EQ(Paths[1].Blocks[2], 3u);
}

TEST(HotPathsTest, LimitTruncates) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  EXPECT_EQ(hotPathsOf(Compacted.Functions[1], 1).size(), 1u);
  EXPECT_EQ(hotPathsOf(Compacted.Functions[1], 10).size(), 2u);
}

TEST(SubpathTest, CountsDynamicOccurrences) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  const TwppFunctionTable &F = Compacted.Functions[1];

  // 2.7.8 occurs 3 times per path2 trace, which ran 3 times.
  EXPECT_EQ(countSubpathOccurrences(F, {2, 7, 8}), 9u);
  // 2.3.4 occurs 3 times per path1 trace, which ran twice.
  EXPECT_EQ(countSubpathOccurrences(F, {2, 3, 4}), 6u);
  // The loop header alone: 3 occurrences in every one of the 5 calls.
  EXPECT_EQ(countSubpathOccurrences(F, {2}), 15u);
  // Absent subpath.
  EXPECT_EQ(countSubpathOccurrences(F, {9, 9}), 0u);
  // Empty needle.
  EXPECT_EQ(countSubpathOccurrences(F, {}), 0u);
  // Whole-trace needle.
  EXPECT_EQ(countSubpathOccurrences(
                F, {1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10}),
            2u);
}

TEST(SubpathTest, MainPathQueryOnlyTouchesMain) {
  RawTrace Trace = fixtures::figure1Trace();
  TwppWpp Compacted = compactWpp(Trace);
  // Main's loop body 2.3.4 appears 5 times in its single call.
  EXPECT_EQ(countSubpathOccurrences(Compacted.Functions[0], {2, 3, 4}), 5u);
}

} // namespace
