//===- tests/WholeProgramSlicerTest.cpp - interprocedural slicing ----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "slicing/WholeProgramSlicer.h"

#include "lang/Lower.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

Module compile(const std::string &Source) {
  Module M;
  std::string Error;
  bool Ok = compileProgram(Source, M, Error);
  EXPECT_TRUE(Ok) << Error;
  return M;
}

/// First instance (by timeline order) of a node whose label matches.
int64_t findInstance(const WholeProgramTrace &Trace, FunctionId F,
                     const std::string &Label, size_t Skip = 0) {
  for (size_t I = 0; I < Trace.instances().size(); ++I) {
    const auto &Inst = Trace.instances()[I];
    if (Inst.Function != F)
      continue;
    if (Trace.bridgeOf(F).Program.stmt(Inst.Node).Label != Label)
      continue;
    if (Skip == 0)
      return static_cast<int64_t>(I);
    --Skip;
  }
  return -1;
}

TEST(WholeProgramTraceTest, FramesAndLinkage) {
  Module M = compile("fn add(a, b) { s = a + b; return s; }"
                     "fn main() { u = call add(1, 2); print u; }");
  ExecutionResult Result;
  RawTrace Raw = traceExecution(M, {}, Result);
  ASSERT_TRUE(Result.Completed);
  WholeProgramTrace Trace = WholeProgramTrace::build(M, Raw);

  ASSERT_EQ(Trace.frames().size(), 2u); // main + one add call
  const auto &AddFrame = Trace.frames()[1];
  EXPECT_EQ(AddFrame.Function, M.findFunction("add")->Id);
  ASSERT_GE(AddFrame.CallerInstance, 0);
  // The caller instance is main's call node, linked both ways.
  const auto &CallInst =
      Trace.instances()[static_cast<size_t>(AddFrame.CallerInstance)];
  EXPECT_EQ(CallInst.Function, M.MainId);
  EXPECT_EQ(CallInst.CalleeFrame, 1);
  EXPECT_GE(AddFrame.ReturnInstance, 0);
}

TEST(WholeProgramSlicerTest, ValueFlowsThroughCallee) {
  Module M = compile("fn add(a, b) { s = a + b; return s; }"
                     "fn mul(a, b) { p = a * b; return p; }"
                     "fn main() {"
                     "  read x;"
                     "  read y;"
                     "  u = call add(x, y);"
                     "  v = call mul(x, 3);"
                     "  print u;"
                     "  print v;"
                     "}");
  ExecutionResult Result;
  RawTrace Raw = traceExecution(M, {4, 5}, Result);
  ASSERT_TRUE(Result.Completed);
  WholeProgramTrace Trace = WholeProgramTrace::build(M, Raw);

  FunctionId Main = M.MainId;
  FunctionId Add = M.findFunction("add")->Id;
  FunctionId Mul = M.findFunction("mul")->Id;

  int64_t Criterion = findInstance(Trace, Main, "print"); // print u
  ASSERT_GE(Criterion, 0);
  GlobalSliceResult Slice = sliceWholeProgram(
      Trace, M, static_cast<size_t>(Criterion), M.internVar("u"));

  // The slice crosses into add: its assignment and return are included.
  bool HasAddAssign = false, HasAddReturn = false;
  bool HasMulAnything = false, HasPrintV = false;
  for (GlobalNode Node : Slice.Nodes) {
    const std::string &Label =
        Trace.bridgeOf(Node.Function).Program.stmt(Node.Node).Label;
    if (Node.Function == Add && Label.rfind("assign", 0) == 0)
      HasAddAssign = true;
    if (Node.Function == Add && Label == "return")
      HasAddReturn = true;
    if (Node.Function == Mul)
      HasMulAnything = true;
    if (Node.Function == Main && Label.rfind("v3 = call", 0) == 0)
      HasPrintV = true;
  }
  EXPECT_TRUE(HasAddAssign);
  EXPECT_TRUE(HasAddReturn);
  EXPECT_FALSE(HasMulAnything); // the unrelated callee stays out
  EXPECT_FALSE(HasPrintV);

  // Both reads feed add's parameters.
  const IrSliceProgram &MainBridge = Trace.bridgeOf(Main);
  int ReadsInSlice = 0;
  for (GlobalNode Node : Slice.Nodes)
    if (Node.Function == Main &&
        MainBridge.Program.stmt(Node.Node).Label.rfind("read", 0) == 0)
      ++ReadsInSlice;
  EXPECT_EQ(ReadsInSlice, 2);
}

TEST(WholeProgramSlicerTest, OnlyRelevantParameterChains) {
  Module M = compile("fn pick(a, b) { return a; }"
                     "fn main() {"
                     "  read x;"
                     "  read y;"
                     "  u = call pick(x, y);"
                     "  print u;"
                     "}");
  ExecutionResult Result;
  RawTrace Raw = traceExecution(M, {1, 2}, Result);
  ASSERT_TRUE(Result.Completed);
  WholeProgramTrace Trace = WholeProgramTrace::build(M, Raw);
  int64_t Criterion = findInstance(Trace, M.MainId, "print");
  GlobalSliceResult Slice = sliceWholeProgram(
      Trace, M, static_cast<size_t>(Criterion), M.internVar("u"));
  // Argument linkage is call-site granular (documented), so both reads
  // are pulled in even though only 'a' matters; the call and pick's
  // return are certainly present.
  EXPECT_GE(Slice.Nodes.size(), 4u);
  bool HasReturn = false;
  for (GlobalNode Node : Slice.Nodes)
    if (Node.Function == M.findFunction("pick")->Id)
      HasReturn = true;
  EXPECT_TRUE(HasReturn);
}

TEST(WholeProgramSlicerTest, RecursionTerminates) {
  Module M = compile("fn fact(n) {"
                     "  if (n < 2) { return 1; }"
                     "  r = call fact(n - 1);"
                     "  return n * r;"
                     "}"
                     "fn main() { f = call fact(6); print f; }");
  ExecutionResult Result;
  RawTrace Raw = traceExecution(M, {}, Result);
  ASSERT_TRUE(Result.Completed);
  WholeProgramTrace Trace = WholeProgramTrace::build(M, Raw);
  ASSERT_EQ(Trace.frames().size(), 7u); // main + fact x6

  int64_t Criterion = findInstance(Trace, M.MainId, "print");
  GlobalSliceResult Slice = sliceWholeProgram(
      Trace, M, static_cast<size_t>(Criterion), M.internVar("f"));
  // The whole recursive chain participates.
  FunctionId Fact = M.findFunction("fact")->Id;
  bool HasFactReturn = false, HasFactBranch = false;
  for (GlobalNode Node : Slice.Nodes) {
    if (Node.Function != Fact)
      continue;
    const std::string &Label =
        Trace.bridgeOf(Fact).Program.stmt(Node.Node).Label;
    if (Label == "return")
      HasFactReturn = true;
    if (Label == "branch")
      HasFactBranch = true;
  }
  EXPECT_TRUE(HasFactReturn);
  EXPECT_TRUE(HasFactBranch); // control dependence inside the callee
  EXPECT_GT(Slice.QueriesGenerated, 5u);
}

TEST(WholeProgramSlicerTest, LastInstanceLookup) {
  Module M = compile("fn main() { i = 0; while (i < 3) { i = i + 1; } "
                     "print i; }");
  ExecutionResult Result;
  RawTrace Raw = traceExecution(M, {}, Result);
  WholeProgramTrace Trace = WholeProgramTrace::build(M, Raw);
  // The loop body assignment executed three times; lastInstanceOf finds
  // the final one.
  const IrSliceProgram &Bridge = Trace.bridgeOf(M.MainId);
  BlockId BodyNode = Bridge.NodesOfBlock[2].front(); // block 3 = body
  int64_t Last = Trace.lastInstanceOf({M.MainId, BodyNode});
  ASSERT_GE(Last, 0);
  for (size_t I = static_cast<size_t>(Last) + 1;
       I < Trace.instances().size(); ++I)
    EXPECT_NE(Trace.instances()[I].Node, BodyNode);
  EXPECT_EQ(Trace.lastInstanceOf({M.MainId, 9999}), -1);
}

} // namespace
