//===- tests/EdgeCasesTest.cpp - assorted boundary conditions --------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Lower.h"
#include "runtime/Interpreter.h"
#include "support/FileIO.h"
#include "wpp/Archive.h"
#include "wpp/Twpp.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace twpp;

namespace {

TEST(LexerEdgeTest, HugeIntegerLiteralRejectedGracefully) {
  std::vector<Token> Tokens;
  std::string Error;
  EXPECT_FALSE(
      tokenize("fn main() { x = 99999999999999999999999; }", Tokens,
               Error));
  EXPECT_NE(Error.find("overflows"), std::string::npos);
  // INT64_MAX itself still parses.
  ASSERT_TRUE(tokenize("x = 9223372036854775807;", Tokens, Error)) << Error;
  EXPECT_EQ(Tokens[2].IntValue, INT64_MAX);
}

TEST(InterpreterEdgeTest, UninitializedReadsAreZero) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() { print never_assigned + 3; }", M,
                             Error));
  ExecutionResult Result;
  traceExecution(M, {}, Result);
  ASSERT_TRUE(Result.Completed);
  EXPECT_EQ(Result.Output, (std::vector<int64_t>{3}));
}

TEST(InterpreterEdgeTest, MissingArgumentsDefaultToZero) {
  // Arity is checked at compile time, so exercise the interpreter-level
  // default through the runtime API instead: main takes no inputs but
  // reads two.
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() { read a; read b; print a + b; }",
                             M, Error));
  ExecutionResult Result;
  traceExecution(M, {41}, Result);
  ASSERT_TRUE(Result.Completed);
  EXPECT_EQ(Result.Output, (std::vector<int64_t>{41}));
}

TEST(InterpreterEdgeTest, SignedOverflowWrapsInsteadOfTrapping) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() {"
                             "  x = 9223372036854775807;"
                             "  print x + 1;"
                             "  print x * 2;"
                             "}",
                             M, Error))
      << Error;
  ExecutionResult Result;
  traceExecution(M, {}, Result);
  ASSERT_TRUE(Result.Completed);
  EXPECT_EQ(Result.Output[0], INT64_MIN);
  EXPECT_EQ(Result.Output[1], -2);
}

TEST(ArchiveEdgeTest, EmptyWppRoundTrips) {
  TwppWpp Empty;
  std::string Path = ::testing::TempDir() + "/twpp_empty.twpp";
  ASSERT_TRUE(writeArchiveFile(Path, Empty));
  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  EXPECT_EQ(Reader.functionCount(), 0u);
  TwppWpp Back;
  ASSERT_TRUE(Reader.readAll(Back));
  EXPECT_EQ(Back, Empty);
  std::remove(Path.c_str());
}

TEST(ArchiveEdgeTest, PrefixOnlyFileRejected) {
  // A file holding only the 28-byte prefix but advertising functions
  // must fail at open, not at first extract.
  TwppWpp Wpp;
  Wpp.Functions.resize(3);
  std::vector<uint8_t> Bytes = encodeArchive(Wpp);
  Bytes.resize(28);
  std::string Path = ::testing::TempDir() + "/twpp_prefix.twpp";
  ASSERT_TRUE(writeFileBytes(Path, Bytes));
  ArchiveReader Reader;
  EXPECT_FALSE(Reader.open(Path));
  std::remove(Path.c_str());
}

TEST(TwppEdgeTest, EmptyTraceCompactsAndReconstructs) {
  RawTrace Trace;
  Trace.FunctionCount = 4;
  TwppWpp Compacted = compactWpp(Trace);
  EXPECT_EQ(reconstructRawTrace(Compacted), Trace);
}

TEST(TwppEdgeTest, SingleCallNoBlocks) {
  RawTrace Trace;
  Trace.FunctionCount = 1;
  Trace.Events = {TraceEvent::enter(0), TraceEvent::exit()};
  TwppWpp Compacted = compactWpp(Trace);
  EXPECT_EQ(reconstructRawTrace(Compacted), Trace);
  EXPECT_EQ(Compacted.Functions[0].CallCount, 1u);
  EXPECT_EQ(Compacted.Functions[0].TraceStrings[0].Length, 0u);
}

TEST(TwppEdgeTest, LargeBlockIdsSurviveThePipeline) {
  RawTrace Trace;
  Trace.FunctionCount = 1;
  Trace.Events.push_back(TraceEvent::enter(0));
  for (BlockId B : {1000000u, 2000000u, 1000000u, 2000000u, 3000000u})
    Trace.Events.push_back(TraceEvent::block(B));
  Trace.Events.push_back(TraceEvent::exit());
  TwppWpp Compacted = compactWpp(Trace);
  EXPECT_EQ(reconstructRawTrace(Compacted), Trace);
}

} // namespace
