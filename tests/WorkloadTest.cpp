//===- tests/WorkloadTest.cpp - synthetic benchmark generators -------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "wpp/Sizes.h"
#include "wpp/Twpp.h"

#include <gtest/gtest.h>

#include <set>

using namespace twpp;

namespace {

WorkloadProfile smallProfile() {
  WorkloadProfile P;
  P.Name = "unit";
  P.Seed = 12345;
  P.FunctionCount = 12;
  P.TargetCalls = 400;
  P.MaxPathLength = 200;
  return P;
}

TEST(GeneratorTest, ProgramIsStructurallyValid) {
  SyntheticProgram Program = generateProgram(smallProfile());
  ASSERT_EQ(Program.Functions.size(), 12u);
  for (FunctionId F = 0; F < Program.Functions.size(); ++F) {
    const SyntheticFunction &Fn = Program.Functions[F];
    ASSERT_FALSE(Fn.Blocks.empty());
    for (const SyntheticBlock &B : Fn.Blocks) {
      EXPECT_LE(B.Succs.size(), 2u);
      for (BlockId Succ : B.Succs) {
        EXPECT_GE(Succ, 1u);
        EXPECT_LE(Succ, Fn.Blocks.size());
      }
      if (B.IsCallSite) {
        EXPECT_GT(B.Callee, F); // acyclic call structure
        EXPECT_LT(B.Callee, Program.Functions.size());
      }
    }
    ASSERT_FALSE(Fn.PathPool.empty());
    EXPECT_EQ(Fn.PathPool.size(), Fn.PathWeights.size());
  }
}

TEST(GeneratorTest, PoolPathsAreValidWalks) {
  SyntheticProgram Program = generateProgram(smallProfile());
  for (const SyntheticFunction &Fn : Program.Functions) {
    for (const auto &Path : Fn.PathPool) {
      ASSERT_FALSE(Path.empty());
      EXPECT_EQ(Path.front(), 1u); // entry block
      for (size_t I = 0; I + 1 < Path.size(); ++I) {
        const auto &Succs = Fn.Blocks[Path[I] - 1].Succs;
        EXPECT_NE(std::find(Succs.begin(), Succs.end(), Path[I + 1]),
                  Succs.end())
            << "invalid edge " << Path[I] << " -> " << Path[I + 1];
      }
    }
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  RawTrace A = generateWorkloadTrace(smallProfile());
  RawTrace B = generateWorkloadTrace(smallProfile());
  EXPECT_EQ(A, B);
  WorkloadProfile Other = smallProfile();
  Other.Seed ^= 1;
  RawTrace C = generateWorkloadTrace(Other);
  EXPECT_NE(A, C);
}

TEST(DriverTest, TraceIsWellFormedAndBudgeted) {
  WorkloadProfile P = smallProfile();
  RawTrace Trace = generateWorkloadTrace(P);
  EXPECT_TRUE(Trace.isWellFormed());
  // main + at most TargetCalls nested calls (budget is a cap).
  EXPECT_LE(Trace.callCount(), P.TargetCalls + 1);
  EXPECT_GT(Trace.callCount(), P.TargetCalls / 2);
}

TEST(DriverTest, UniqueTracesBoundedByPool) {
  WorkloadProfile P = smallProfile();
  SyntheticProgram Program = generateProgram(P);
  RawTrace Trace = generateWorkloadTrace(P);
  PartitionedWpp Wpp = partitionWpp(Trace);
  for (FunctionId F = 0; F < Program.Functions.size(); ++F)
    EXPECT_LE(Wpp.Functions[F].UniqueTraces.size(),
              Program.Functions[F].PathPool.size())
        << "function " << F;
}

TEST(DriverTest, PipelineLosslessOnWorkload) {
  RawTrace Trace = generateWorkloadTrace(smallProfile());
  TwppWpp Compacted = compactWpp(Trace);
  EXPECT_EQ(reconstructRawTrace(Compacted), Trace);
}

TEST(ProfilesTest, FiveBenchmarksWithPaperNames) {
  std::vector<WorkloadProfile> Profiles = paperProfiles();
  ASSERT_EQ(Profiles.size(), 5u);
  EXPECT_EQ(Profiles[0].Name, "099.go");
  EXPECT_EQ(Profiles[1].Name, "126.gcc");
  EXPECT_EQ(Profiles[2].Name, "130.li");
  EXPECT_EQ(Profiles[3].Name, "132.ijpeg");
  EXPECT_EQ(Profiles[4].Name, "134.perl");
  std::set<uint64_t> Seeds;
  for (const WorkloadProfile &P : Profiles)
    Seeds.insert(P.Seed);
  EXPECT_EQ(Seeds.size(), 5u);
}

TEST(ProfilesTest, TestProfilesCompactLosslessly) {
  for (const WorkloadProfile &P : testProfiles()) {
    RawTrace Trace = generateWorkloadTrace(P);
    ASSERT_TRUE(Trace.isWellFormed()) << P.Name;
    TwppWpp Compacted = compactWpp(Trace);
    EXPECT_EQ(reconstructRawTrace(Compacted), Trace) << P.Name;
  }
}

TEST(ProfilesTest, RedundancyShapeMatchesPaper) {
  // The paper's core observation: functions are called many times but
  // follow few unique paths. On every profile, redundancy removal must
  // shrink traces by a large factor.
  for (const WorkloadProfile &P : testProfiles()) {
    RawTrace Trace = generateWorkloadTrace(P);
    PartitionedWpp Partitioned = partitionWpp(Trace);
    DbbWpp Dbb = applyDbbCompaction(Partitioned);
    TwppWpp Twpp = convertToTwpp(Dbb);
    StageSizes Sizes = measureStages(Partitioned, Dbb, Twpp);
    double Factor = static_cast<double>(Sizes.OwppTraceBytes) /
                    static_cast<double>(Sizes.DedupedTraceBytes);
    EXPECT_GT(Factor, 2.0) << P.Name;
  }
}

TEST(StaticStatsTest, CountsNodesAndEdges) {
  SyntheticProgram Program = generateProgram(smallProfile());
  CfgStats Stats = Program.staticStats();
  EXPECT_GT(Stats.Nodes, Program.Functions.size());
  EXPECT_GT(Stats.Edges, 0u);
}

} // namespace
