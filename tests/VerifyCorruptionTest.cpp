//===- tests/VerifyCorruptionTest.cpp - verifier vs corrupted archives -----===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mirrors every mutation of ArchiveCorruptionTest through the verifier:
/// each corruption the reader survives-or-rejects must be *named* by at
/// least one check of runArchiveBytesChecks, healthy archives (including
/// every paper-profile workload) must verify with zero diagnostics, and
/// ArchiveReader::lastError() must describe each failure with the right
/// check id, section and byte offset (the decode-error hardening
/// contract).
///
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"
#include "support/Random.h"
#include "verify/Verify.h"
#include "workloads/Workload.h"
#include "wpp/Archive.h"

#include "TestTraces.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace twpp;
using namespace twpp::verify;

namespace {

// Arm the TWPP_VERIFY post-stage assertions: when the environment
// variable is set (the sanitizer CI job does), every compactWpp /
// encodeArchive in this binary re-verifies its own output.
const bool PipelineVerifierInstalled = [] {
  installPipelineVerifier();
  return true;
}();

// The pinned archive layout (docs/FORMATS.md; ArchiveCorruptionTest
// asserts the same constants against live bytes).
constexpr size_t PrefixSize = 12;
constexpr size_t DcgFieldsSize = 16;
constexpr size_t IndexStart = PrefixSize + DcgFieldsSize;
constexpr size_t IndexRowSize = 24;

uint64_t readLe64(const std::vector<uint8_t> &Bytes, size_t At) {
  uint64_t Value = 0;
  for (int I = 0; I < 8; ++I)
    Value |= static_cast<uint64_t>(Bytes[At + I]) << (8 * I);
  return Value;
}

void writeLe64(std::vector<uint8_t> &Bytes, size_t At, uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Bytes[At + I] = static_cast<uint8_t>(Value >> (8 * I));
}

bool hasCheck(const DiagnosticEngine &Engine, std::string_view Id) {
  for (const Diagnostic &D : Engine.diagnostics())
    if (D.CheckId == Id)
      return true;
  return false;
}

/// First diagnostic filed under \p Id, or nullptr.
const Diagnostic *firstDiag(const DiagnosticEngine &Engine,
                            std::string_view Id) {
  for (const Diagnostic &D : Engine.diagnostics())
    if (D.CheckId == Id)
      return &D;
  return nullptr;
}

DiagnosticEngine verifyBytes(const std::vector<uint8_t> &Bytes,
                             const std::string &Glob = "*") {
  DiagnosticEngine Engine(Glob);
  runArchiveBytesChecks(Bytes, Engine);
  return Engine;
}

/// Same fixture as ArchiveCorruptionTest: one healthy archive, in bytes
/// and decoded, shared by every test in the suite.
class VerifyCorruption : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    RawTrace Trace = fixtures::randomTrace(2024, 6, 3000);
    Original = new TwppWpp(compactWpp(Trace));
    Bytes = new std::vector<uint8_t>(encodeArchive(*Original));
  }

  static void TearDownTestSuite() {
    delete Original;
    delete Bytes;
    Original = nullptr;
    Bytes = nullptr;
  }

  std::string writeVariant(const std::vector<uint8_t> &Variant,
                           const std::string &Name) {
    std::string Path = ::testing::TempDir() + "/verify_" + Name + ".twpp";
    EXPECT_TRUE(writeFileBytes(Path, Variant));
    Cleanup.push_back(Path);
    return Path;
  }

  void TearDown() override {
    for (const std::string &Path : Cleanup)
      std::remove(Path.c_str());
  }

  static TwppWpp *Original;
  static std::vector<uint8_t> *Bytes;
  std::vector<std::string> Cleanup;
};

TwppWpp *VerifyCorruption::Original = nullptr;
std::vector<uint8_t> *VerifyCorruption::Bytes = nullptr;

//===----------------------------------------------------------------------===//
// Healthy archives verify clean.
//===----------------------------------------------------------------------===//

TEST_F(VerifyCorruption, HealthyArchiveHasNoDiagnostics) {
  DiagnosticEngine Engine = verifyBytes(*Bytes);
  EXPECT_TRUE(Engine.empty()) << renderDiagnosticsText(Engine);
}

TEST_F(VerifyCorruption, ArchiveGlobCoversEveryFinding) {
  // The CI smoke filter: with --checks=twpp-archive-* the raw-byte layer
  // still runs end to end on a healthy archive.
  DiagnosticEngine Engine = verifyBytes(*Bytes, "twpp-archive-*");
  EXPECT_TRUE(Engine.empty()) << renderDiagnosticsText(Engine);
}

//===----------------------------------------------------------------------===//
// Header-layer corruptions: truncation, magic/version, function count.
//===----------------------------------------------------------------------===//

TEST_F(VerifyCorruption, TruncationsAreHeaderErrors) {
  size_t IndexEnd = IndexStart + Original->Functions.size() * IndexRowSize;
  for (size_t Length : {size_t(0), size_t(1), size_t(4), size_t(11),
                        PrefixSize, size_t(20), IndexStart - 1, IndexStart,
                        IndexStart + 5, IndexEnd - 1}) {
    std::vector<uint8_t> Truncated(Bytes->begin(),
                                   Bytes->begin() +
                                       static_cast<long>(Length));
    DiagnosticEngine Engine = verifyBytes(Truncated);
    EXPECT_FALSE(Engine.clean()) << "prefix length " << Length;
    EXPECT_TRUE(hasCheck(Engine, checks::ArchiveHeader))
        << "prefix length " << Length << ": "
        << renderDiagnosticsText(Engine);
  }
}

TEST_F(VerifyCorruption, BadMagicAndVersionAreHeaderErrors) {
  for (size_t Byte : {size_t(0), size_t(4)}) {
    std::vector<uint8_t> Variant = *Bytes;
    Variant[Byte] ^= 0xFF;
    DiagnosticEngine Engine = verifyBytes(Variant);
    const Diagnostic *D = firstDiag(Engine, checks::ArchiveHeader);
    ASSERT_NE(D, nullptr) << "flipped header byte " << Byte;
    EXPECT_EQ(D->ByteOffset, Byte);
    EXPECT_EQ(D->Location, "header");
  }
}

TEST_F(VerifyCorruption, HugeFunctionCountIsAHeaderError) {
  std::vector<uint8_t> Variant = *Bytes;
  Variant[8] = 0xFF;
  Variant[9] = 0xFF;
  Variant[10] = 0xFF;
  Variant[11] = 0x7F;
  DiagnosticEngine Engine = verifyBytes(Variant);
  const Diagnostic *D = firstDiag(Engine, checks::ArchiveHeader);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->ByteOffset, 8u);
}

TEST_F(VerifyCorruption, DcgExtentPastEofIsAHeaderError) {
  for (size_t Field : {size_t(0), size_t(8)}) {
    std::vector<uint8_t> Variant = *Bytes;
    writeLe64(Variant, PrefixSize + Field,
              Field == 0 ? Bytes->size() + 1 : Bytes->size());
    DiagnosticEngine Engine = verifyBytes(Variant);
    const Diagnostic *D = firstDiag(Engine, checks::ArchiveHeader);
    ASSERT_NE(D, nullptr) << "dcg field at +" << Field;
    EXPECT_EQ(D->Location, "dcg extent");
    EXPECT_EQ(D->ByteOffset, PrefixSize);
  }
}

//===----------------------------------------------------------------------===//
// Index-layer corruptions.
//===----------------------------------------------------------------------===//

TEST_F(VerifyCorruption, IndexRowPastEofIsAnIndexBoundsError) {
  const size_t FunctionCount = Original->Functions.size();
  ASSERT_GT(FunctionCount, 0u);
  for (size_t F : {size_t(0), FunctionCount / 2, FunctionCount - 1}) {
    size_t Row = IndexStart + F * IndexRowSize;
    // Offset past EOF, length past EOF, and uint64 extent wrap-around.
    for (int Mode = 0; Mode < 3; ++Mode) {
      std::vector<uint8_t> Variant = *Bytes;
      if (Mode == 0) {
        writeLe64(Variant, Row, Bytes->size() + 1000);
      } else if (Mode == 1) {
        writeLe64(Variant, Row + 8, Bytes->size());
      } else {
        writeLe64(Variant, Row, ~uint64_t(0) - 8);
        writeLe64(Variant, Row + 8, 1000);
      }
      DiagnosticEngine Engine = verifyBytes(Variant);
      const Diagnostic *D = firstDiag(Engine, checks::ArchiveIndexBounds);
      ASSERT_NE(D, nullptr) << "row " << F << " mode " << Mode;
      EXPECT_EQ(D->ByteOffset, Row) << "row " << F << " mode " << Mode;
      EXPECT_EQ(D->Location, "index row " + std::to_string(F));
    }
  }
}

TEST_F(VerifyCorruption, OverlappingExtentsAreAnIndexBoundsError) {
  // Point one block's extent into another's bytes. Pick two non-empty
  // rows and alias the second onto the first.
  const size_t FunctionCount = Original->Functions.size();
  size_t A = FunctionCount, B = FunctionCount;
  for (size_t F = 0; F < FunctionCount; ++F) {
    if (readLe64(*Bytes, IndexStart + F * IndexRowSize + 8) == 0)
      continue;
    if (A == FunctionCount)
      A = F;
    else if (B == FunctionCount)
      B = F;
  }
  ASSERT_LT(B, FunctionCount) << "fixture lacks two non-empty blocks";
  std::vector<uint8_t> Variant = *Bytes;
  size_t RowA = IndexStart + A * IndexRowSize;
  size_t RowB = IndexStart + B * IndexRowSize;
  writeLe64(Variant, RowB, readLe64(*Bytes, RowA) + 1);
  DiagnosticEngine Engine = verifyBytes(Variant);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveIndexBounds))
      << renderDiagnosticsText(Engine);
}

TEST_F(VerifyCorruption, FrequencyOrderViolationWarns) {
  // Inflate the call-count field of a row that is not first in file order
  // past every other row's count: walking blocks by offset, counts now
  // increase at that row, breaking the most-frequent-first layout. (The
  // drift between index and block call counts also fires
  // twpp-archive-block-decode; the glob isolates the layout warning.)
  const size_t FunctionCount = Original->Functions.size();
  ASSERT_GE(FunctionCount, 2u);
  size_t First = 0;
  uint64_t MaxCalls = 0;
  for (size_t F = 0; F < FunctionCount; ++F) {
    size_t Row = IndexStart + F * IndexRowSize;
    if (readLe64(*Bytes, Row) < readLe64(*Bytes, IndexStart + First * IndexRowSize))
      First = F;
    MaxCalls = std::max(MaxCalls, readLe64(*Bytes, Row + 16));
  }
  size_t Victim = First == 0 ? 1 : 0;
  std::vector<uint8_t> Variant = *Bytes;
  writeLe64(Variant, IndexStart + Victim * IndexRowSize + 16, MaxCalls + 1);
  DiagnosticEngine Engine = verifyBytes(Variant, "twpp-archive-index-order");
  const Diagnostic *D = firstDiag(Engine, checks::ArchiveIndexOrder);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Sev, Severity::Warning);
}

//===----------------------------------------------------------------------===//
// Block and DCG payload corruptions.
//===----------------------------------------------------------------------===//

TEST_F(VerifyCorruption, TruncatedFunctionBlockIsABlockDecodeError) {
  const size_t FunctionCount = Original->Functions.size();
  size_t Victim = FunctionCount;
  for (size_t F = 0; F < FunctionCount; ++F)
    if (readLe64(*Bytes, IndexStart + F * IndexRowSize + 8) > 4) {
      Victim = F;
      break;
    }
  ASSERT_LT(Victim, FunctionCount) << "fixture has no non-trivial block";
  size_t Row = IndexStart + Victim * IndexRowSize;
  uint64_t Length = readLe64(*Bytes, Row + 8);
  for (uint64_t Cut : {Length / 2, Length - 1}) {
    std::vector<uint8_t> Variant = *Bytes;
    writeLe64(Variant, Row + 8, Cut);
    DiagnosticEngine Engine = verifyBytes(Variant);
    EXPECT_TRUE(hasCheck(Engine, checks::ArchiveBlockDecode))
        << "block cut to " << Cut << ": " << renderDiagnosticsText(Engine);
  }
}

TEST_F(VerifyCorruption, CallCountDriftIsABlockDecodeError) {
  // Index call count no longer matching the decoded table is the one
  // index-vs-block cross check the reader itself never performs.
  const size_t FunctionCount = Original->Functions.size();
  size_t Victim = FunctionCount;
  for (size_t F = 0; F < FunctionCount; ++F)
    if (readLe64(*Bytes, IndexStart + F * IndexRowSize + 16) > 0) {
      Victim = F;
      break;
    }
  ASSERT_LT(Victim, FunctionCount);
  std::vector<uint8_t> Variant = *Bytes;
  size_t Row = IndexStart + Victim * IndexRowSize;
  writeLe64(Variant, Row + 16, readLe64(*Bytes, Row + 16) + 1);
  DiagnosticEngine Engine = verifyBytes(Variant);
  EXPECT_TRUE(hasCheck(Engine, checks::ArchiveBlockDecode))
      << renderDiagnosticsText(Engine);
}

TEST_F(VerifyCorruption, BitFlippedDcgIsNamedOrDecodesDifferently) {
  uint64_t DcgOffset = readLe64(*Bytes, PrefixSize);
  uint64_t DcgLength = readLe64(*Bytes, PrefixSize + 8);
  ASSERT_GT(DcgLength, 0u);
  Rng R(7);
  int Caught = 0;
  for (int Case = 0; Case < 24; ++Case) {
    std::vector<uint8_t> Variant = *Bytes;
    size_t At = static_cast<size_t>(DcgOffset + R.nextBelow(DcgLength));
    Variant[At] ^= static_cast<uint8_t>(1u << R.nextBelow(8));
    DiagnosticEngine Engine = verifyBytes(Variant);
    if (!Engine.clean()) {
      ++Caught;
      continue;
    }
    // The verifier absorbed the flip: the stream must still decode (to a
    // graph that passes every consistency check) yet differ from the
    // original — a silent no-op flip would mean the check ran on stale
    // bytes.
    std::string Path = writeVariant(Variant, "dcg_" + std::to_string(Case));
    ArchiveReader Reader;
    ASSERT_TRUE(Reader.open(Path));
    DynamicCallGraph Dcg;
    ASSERT_TRUE(Reader.readDcg(Dcg)) << "clean verify but unreadable DCG";
    EXPECT_NE(Dcg, Original->Dcg) << "flip at " << At << " was a no-op";
  }
  // Same density expectation as the reader-level test: most flips are
  // detected outright.
  EXPECT_GE(Caught, 12);
}

TEST_F(VerifyCorruption, BitFlippedBlockIsNamedOrDecodesDifferently) {
  const size_t FunctionCount = Original->Functions.size();
  Rng R(11);
  for (int Case = 0; Case < 24; ++Case) {
    size_t F = R.nextBelow(FunctionCount);
    size_t Row = IndexStart + F * IndexRowSize;
    uint64_t Offset = readLe64(*Bytes, Row);
    uint64_t Length = readLe64(*Bytes, Row + 8);
    if (Length == 0)
      continue;
    std::vector<uint8_t> Variant = *Bytes;
    size_t At = static_cast<size_t>(Offset + R.nextBelow(Length));
    Variant[At] ^= static_cast<uint8_t>(1u << R.nextBelow(8));
    DiagnosticEngine Engine = verifyBytes(Variant);
    if (!Engine.clean())
      continue;
    std::string Path = writeVariant(Variant, "blk_" + std::to_string(Case));
    ArchiveReader Reader;
    ASSERT_TRUE(Reader.open(Path));
    TwppFunctionTable Table;
    ASSERT_TRUE(Reader.extractFunction(static_cast<FunctionId>(F), Table))
        << "clean verify but undecodable block";
    EXPECT_NE(Table, Original->Functions[F])
        << "flip at " << At << " was a no-op";
  }
}

//===----------------------------------------------------------------------===//
// ArchiveReader::lastError() — the decode-error hardening contract.
// Parameterized over IoMode: the named diagnostic (check id, location,
// byte offset) must be the same whether the archive was read buffered
// or memory-mapped.
//===----------------------------------------------------------------------===//

class VerifyCorruptionMode : public VerifyCorruption,
                             public ::testing::WithParamInterface<IoMode> {
protected:
  /// The two IoMode instances run as concurrent ctest processes; the
  /// parameter suffix keeps their variant files from racing each other.
  std::string writeVariant(const std::vector<uint8_t> &Variant,
                           const std::string &Name) {
    return VerifyCorruption::writeVariant(
        Variant, Name + "_" + std::string(ioModeName(GetParam())));
  }
};

INSTANTIATE_TEST_SUITE_P(IoModes, VerifyCorruptionMode,
                         ::testing::Values(IoMode::Buffered, IoMode::Mmap),
                         [](const ::testing::TestParamInfo<IoMode> &Info) {
                           return ioModeName(Info.param);
                         });

TEST_P(VerifyCorruptionMode, LastErrorNamesMissingFile) {
  ArchiveReader Reader;
  ASSERT_FALSE(Reader.open(::testing::TempDir() + "/verify_missing.twpp",
                           GetParam()));
  EXPECT_EQ(Reader.lastError().CheckId, checks::ArchiveHeader);
  EXPECT_EQ(Reader.lastError().Location, "header");
  EXPECT_EQ(Reader.lastError().ByteOffset, 0u);
}

TEST_P(VerifyCorruptionMode, LastErrorNamesBadMagicAndVersion) {
  for (size_t Byte : {size_t(0), size_t(4)}) {
    std::vector<uint8_t> Variant = *Bytes;
    Variant[Byte] ^= 0xFF;
    std::string Path = writeVariant(Variant, "hdr_" + std::to_string(Byte));
    ArchiveReader Reader;
    ASSERT_FALSE(Reader.open(Path, GetParam()));
    EXPECT_EQ(Reader.lastError().CheckId, checks::ArchiveHeader);
    EXPECT_EQ(Reader.lastError().Location, "header");
    EXPECT_EQ(Reader.lastError().ByteOffset, Byte);
    EXPECT_EQ(Reader.lastError().Sev, Severity::Error);
  }
}

TEST_P(VerifyCorruptionMode, LastErrorNamesIndexRowAndOffset) {
  const size_t FunctionCount = Original->Functions.size();
  size_t F = FunctionCount / 2;
  size_t Row = IndexStart + F * IndexRowSize;
  std::vector<uint8_t> Variant = *Bytes;
  writeLe64(Variant, Row, Bytes->size() + 1000);
  std::string Path = writeVariant(Variant, "idxerr");
  ArchiveReader Reader;
  ASSERT_FALSE(Reader.open(Path, GetParam()));
  EXPECT_EQ(Reader.lastError().CheckId, checks::ArchiveIndexBounds);
  EXPECT_EQ(Reader.lastError().Location, "index row " + std::to_string(F));
  EXPECT_EQ(Reader.lastError().ByteOffset, Row);
}

TEST_P(VerifyCorruptionMode, LastErrorNamesTruncatedBlock) {
  const size_t FunctionCount = Original->Functions.size();
  size_t Victim = FunctionCount;
  for (size_t F = 0; F < FunctionCount; ++F)
    if (readLe64(*Bytes, IndexStart + F * IndexRowSize + 8) > 4) {
      Victim = F;
      break;
    }
  ASSERT_LT(Victim, FunctionCount);
  size_t Row = IndexStart + Victim * IndexRowSize;
  uint64_t Offset = readLe64(*Bytes, Row);
  std::vector<uint8_t> Variant = *Bytes;
  writeLe64(Variant, Row + 8, readLe64(*Bytes, Row + 8) / 2);
  std::string Path = writeVariant(Variant, "cuterr");
  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path, GetParam()));
  TwppFunctionTable Table;
  ASSERT_FALSE(Reader.extractFunction(static_cast<FunctionId>(Victim), Table));
  EXPECT_EQ(Reader.lastError().CheckId, checks::ArchiveBlockDecode);
  EXPECT_EQ(Reader.lastError().Location,
            "function " + std::to_string(Victim) + " block");
  EXPECT_EQ(Reader.lastError().ByteOffset, Offset);
}

TEST_P(VerifyCorruptionMode, LastErrorNamesOutOfRangeFunction) {
  std::string Path = writeVariant(*Bytes, "rangeerr");
  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path, GetParam()));
  TwppFunctionTable Table;
  ASSERT_FALSE(Reader.extractFunction(
      static_cast<FunctionId>(Original->Functions.size()), Table));
  EXPECT_EQ(Reader.lastError().CheckId, checks::ArchiveIndexBounds);
  EXPECT_EQ(Reader.lastError().Location, "index");
  EXPECT_EQ(Reader.lastError().ByteOffset, NoByteOffset);
}

TEST_P(VerifyCorruptionMode, LastErrorNamesUndecodableDcg) {
  // Find a flip the reader's own decoder rejects and assert the
  // diagnostic fields; seed 7 mirrors the robustness suite, where at
  // least half the flips are rejected.
  uint64_t DcgOffset = readLe64(*Bytes, PrefixSize);
  uint64_t DcgLength = readLe64(*Bytes, PrefixSize + 8);
  Rng R(7);
  bool Checked = false;
  for (int Case = 0; Case < 24 && !Checked; ++Case) {
    std::vector<uint8_t> Variant = *Bytes;
    size_t At = static_cast<size_t>(DcgOffset + R.nextBelow(DcgLength));
    Variant[At] ^= static_cast<uint8_t>(1u << R.nextBelow(8));
    std::string Path = writeVariant(Variant, "dcgerr_" + std::to_string(Case));
    ArchiveReader Reader;
    ASSERT_TRUE(Reader.open(Path, GetParam()));
    DynamicCallGraph Dcg;
    if (Reader.readDcg(Dcg))
      continue;
    EXPECT_EQ(Reader.lastError().CheckId, checks::ArchiveDcgDecode);
    EXPECT_EQ(Reader.lastError().Location, "dcg");
    EXPECT_EQ(Reader.lastError().ByteOffset, DcgOffset);
    Checked = true;
  }
  EXPECT_TRUE(Checked) << "no flip was rejected by the DCG decoder";
}

//===----------------------------------------------------------------------===//
// Clean bench workloads (the paper's Table 2/3 programs).
//===----------------------------------------------------------------------===//

class WorkloadVerify : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadVerify, BenchArchiveVerifiesClean) {
  WorkloadProfile Profile = paperProfiles()[GetParam()];
  RawTrace Trace = generateWorkloadTrace(Profile);
  std::vector<uint8_t> Archive = encodeArchive(compactWpp(Trace));
  DiagnosticEngine Engine = verifyBytes(Archive);
  EXPECT_TRUE(Engine.empty())
      << Profile.Name << ": " << renderDiagnosticsText(Engine);
}

INSTANTIATE_TEST_SUITE_P(PaperProfiles, WorkloadVerify,
                         ::testing::Range(size_t(0), size_t(5)),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return paperProfiles()[Info.param].Name.substr(4);
                         });

} // namespace
