//===- tests/IngestWireTest.cpp - twpp-wire-v1 codec and decoder ---------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// The wire protocol's contract under fire: payloads round-trip, the
// incremental decoder survives arbitrary chunking (frames straddling
// read-buffer edges), and every flavor of damage — flipped bytes,
// truncation, garbage prefixes, oversized lengths, magics aliased inside
// payloads — costs only the damaged frames, never the stream.
//
//===----------------------------------------------------------------------===//

#include "ingest/Wire.h"

#include "gtest/gtest.h"

#include <cstring>

using namespace twpp;
using namespace twpp::ingest;

namespace {

std::vector<TraceEvent> sampleEvents() {
  return {TraceEvent::enter(3), TraceEvent::block(1), TraceEvent::block(2),
          TraceEvent::enter(7), TraceEvent::block(9), TraceEvent::exit(),
          TraceEvent::exit()};
}

std::vector<uint8_t> frameBytes(uint32_t Producer, uint64_t Seq,
                                const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Out;
  appendWireFrame(Out, Producer, Seq, Payload);
  return Out;
}

/// Feeds \p Bytes to \p Decoder in chunks of \p Chunk bytes and drains
/// every complete frame.
std::vector<WireFrame> pump(FrameDecoder &Decoder,
                            const std::vector<uint8_t> &Bytes, size_t Chunk) {
  std::vector<WireFrame> Frames;
  for (size_t I = 0; I < Bytes.size(); I += Chunk) {
    size_t N = std::min(Chunk, Bytes.size() - I);
    Decoder.feed(Bytes.data() + I, N);
    WireFrame Frame;
    while (Decoder.next(Frame))
      Frames.push_back(Frame);
  }
  return Frames;
}

TEST(IngestWireTest, HelloPayloadRoundTrip) {
  std::vector<uint8_t> Bytes = encodeHelloPayload(12345);
  WirePayload Payload;
  ASSERT_TRUE(decodeWirePayload(ByteSpan(Bytes.data(), Bytes.size()),
                                Payload));
  EXPECT_EQ(Payload.Kind, WireFrameKind::Hello);
  EXPECT_EQ(Payload.FunctionCount, 12345u);
}

TEST(IngestWireTest, EventsPayloadRoundTrip) {
  std::vector<TraceEvent> Events = sampleEvents();
  std::vector<uint8_t> Bytes =
      encodeEventsPayload(Events.data(), Events.data() + Events.size());
  WirePayload Payload;
  ASSERT_TRUE(decodeWirePayload(ByteSpan(Bytes.data(), Bytes.size()),
                                Payload));
  EXPECT_EQ(Payload.Kind, WireFrameKind::Events);
  EXPECT_EQ(Payload.Events, Events);
}

TEST(IngestWireTest, ByePayloadRoundTrip) {
  std::vector<uint8_t> Bytes = encodeByePayload(987654321ull);
  WirePayload Payload;
  ASSERT_TRUE(decodeWirePayload(ByteSpan(Bytes.data(), Bytes.size()),
                                Payload));
  EXPECT_EQ(Payload.Kind, WireFrameKind::Bye);
  EXPECT_EQ(Payload.TotalEvents, 987654321ull);
}

TEST(IngestWireTest, PayloadRejectsUnknownKind) {
  std::vector<uint8_t> Bytes = {99, 0};
  WirePayload Payload;
  EXPECT_FALSE(decodeWirePayload(ByteSpan(Bytes.data(), Bytes.size()),
                                 Payload));
}

TEST(IngestWireTest, PayloadRejectsTrailingBytes) {
  std::vector<uint8_t> Bytes = encodeHelloPayload(5);
  Bytes.push_back(0);
  WirePayload Payload;
  EXPECT_FALSE(decodeWirePayload(ByteSpan(Bytes.data(), Bytes.size()),
                                 Payload));
}

TEST(IngestWireTest, PayloadRejectsTruncatedEventBatch) {
  std::vector<TraceEvent> Events = sampleEvents();
  std::vector<uint8_t> Bytes =
      encodeEventsPayload(Events.data(), Events.data() + Events.size());
  Bytes.resize(Bytes.size() - 2); // count now promises more than present
  WirePayload Payload;
  EXPECT_FALSE(decodeWirePayload(ByteSpan(Bytes.data(), Bytes.size()),
                                 Payload));
}

TEST(IngestWireTest, DecoderSingleFrame) {
  std::vector<uint8_t> Bytes = frameBytes(4, 17, encodeHelloPayload(50));
  FrameDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  WireFrame Frame;
  ASSERT_TRUE(Decoder.next(Frame));
  EXPECT_EQ(Frame.ProducerId, 4u);
  EXPECT_EQ(Frame.Sequence, 17u);
  EXPECT_FALSE(Decoder.next(Frame));
  EXPECT_EQ(Decoder.stats().Frames, 1u);
  EXPECT_EQ(Decoder.stats().FrameBytes, Bytes.size());
  EXPECT_EQ(Decoder.stats().CorruptFrames, 0u);
  EXPECT_EQ(Decoder.stats().ResyncBytes, 0u);
}

TEST(IngestWireTest, DecoderSurvivesByteAtATimeFeeding) {
  // Frames straddle every possible buffer edge when fed byte by byte.
  std::vector<TraceEvent> Events = sampleEvents();
  std::vector<uint8_t> Bytes;
  appendWireFrame(Bytes, 1, 0, encodeHelloPayload(8));
  appendWireFrame(Bytes, 1, 1,
                  encodeEventsPayload(Events.data(),
                                      Events.data() + Events.size()));
  appendWireFrame(Bytes, 1, 2, encodeByePayload(Events.size()));

  FrameDecoder Decoder;
  std::vector<WireFrame> Frames = pump(Decoder, Bytes, 1);
  ASSERT_EQ(Frames.size(), 3u);
  EXPECT_EQ(Frames[0].Sequence, 0u);
  EXPECT_EQ(Frames[1].Sequence, 1u);
  EXPECT_EQ(Frames[2].Sequence, 2u);
  EXPECT_EQ(Decoder.stats().CorruptFrames, 0u);
  EXPECT_EQ(Decoder.stats().ResyncBytes, 0u);

  WirePayload Payload;
  ASSERT_TRUE(decodeWirePayload(
      ByteSpan(Frames[1].Payload.data(), Frames[1].Payload.size()), Payload));
  EXPECT_EQ(Payload.Events, Events);
}

TEST(IngestWireTest, DecoderChunkSizeSweepIsChunkingInvariant) {
  std::vector<TraceEvent> Events = sampleEvents();
  std::vector<uint8_t> Bytes;
  for (uint64_t Seq = 0; Seq < 20; ++Seq)
    appendWireFrame(Bytes, 2, Seq,
                    encodeEventsPayload(Events.data(),
                                        Events.data() + Events.size()));
  for (size_t Chunk : {1u, 2u, 3u, 7u, 13u, 64u, 4096u}) {
    FrameDecoder Decoder;
    std::vector<WireFrame> Frames = pump(Decoder, Bytes, Chunk);
    ASSERT_EQ(Frames.size(), 20u) << "chunk=" << Chunk;
    for (uint64_t Seq = 0; Seq < 20; ++Seq)
      EXPECT_EQ(Frames[Seq].Sequence, Seq) << "chunk=" << Chunk;
  }
}

TEST(IngestWireTest, DecoderResyncsPastCorruptPayloadByte) {
  std::vector<uint8_t> Bytes;
  appendWireFrame(Bytes, 1, 0, encodeHelloPayload(8));
  size_t FirstEnd = Bytes.size();
  appendWireFrame(Bytes, 1, 1, encodeByePayload(0));
  Bytes[WireHeaderSize + 1] ^= 0xFF; // flip a payload byte of frame 0

  FrameDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  WireFrame Frame;
  ASSERT_TRUE(Decoder.next(Frame));
  EXPECT_EQ(Frame.Sequence, 1u); // frame 0 lost, frame 1 recovered
  EXPECT_FALSE(Decoder.next(Frame));
  EXPECT_EQ(Decoder.stats().Frames, 1u);
  EXPECT_EQ(Decoder.stats().CorruptFrames, 1u);
  // Resync scanned forward from just past frame 0's magic to frame 1's.
  EXPECT_GE(Decoder.stats().ResyncBytes, FirstEnd - 4);
}

TEST(IngestWireTest, DecoderSkipsGarbagePrefix) {
  std::vector<uint8_t> Garbage(37, 0xAB);
  std::vector<uint8_t> Bytes = Garbage;
  appendWireFrame(Bytes, 1, 0, encodeHelloPayload(8));

  FrameDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  WireFrame Frame;
  ASSERT_TRUE(Decoder.next(Frame));
  EXPECT_EQ(Frame.Sequence, 0u);
  EXPECT_EQ(Decoder.stats().ResyncBytes, Garbage.size());
}

TEST(IngestWireTest, DecoderTreatsOversizedLengthAsDamage) {
  // A CRC-correct frame whose length field was smashed to > WireMaxPayload
  // must not make the decoder wait for gigabytes: it resyncs instead.
  std::vector<uint8_t> Bytes;
  appendWireFrame(Bytes, 1, 0, encodeHelloPayload(8));
  uint32_t Huge = WireMaxPayload + 1;
  std::memcpy(Bytes.data() + 4 + 4 + 4 + 8, &Huge, 4); // payloadLength
  size_t FirstEnd = Bytes.size();
  appendWireFrame(Bytes, 1, 1, encodeByePayload(0));

  FrameDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  WireFrame Frame;
  ASSERT_TRUE(Decoder.next(Frame));
  EXPECT_EQ(Frame.Sequence, 1u);
  EXPECT_FALSE(Decoder.next(Frame));
  EXPECT_EQ(Decoder.stats().Frames, 1u);
  EXPECT_GE(Decoder.stats().ResyncBytes, FirstEnd - 4);
}

TEST(IngestWireTest, DecoderFinishFlushesTruncatedTail) {
  std::vector<uint8_t> Bytes;
  appendWireFrame(Bytes, 1, 0, encodeHelloPayload(8));
  std::vector<uint8_t> Tail;
  appendWireFrame(Tail, 1, 1, encodeByePayload(0));
  Bytes.insert(Bytes.end(), Tail.begin(), Tail.end() - 3); // cut 3 bytes

  FrameDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  WireFrame Frame;
  ASSERT_TRUE(Decoder.next(Frame));
  EXPECT_EQ(Frame.Sequence, 0u);
  // Without finish() the decoder waits for the missing tail bytes...
  EXPECT_FALSE(Decoder.next(Frame));
  EXPECT_GT(Decoder.pendingBytes(), 0u);
  // ...after finish() it knows they will never arrive and writes the
  // partial frame off as damage.
  Decoder.finish();
  EXPECT_FALSE(Decoder.next(Frame));
  EXPECT_EQ(Decoder.stats().Frames, 1u);
  EXPECT_GT(Decoder.stats().ResyncBytes, 0u);
}

TEST(IngestWireTest, DecoderResyncIgnoresMagicAliasedInsidePayload) {
  // Craft a payload that contains the bytes "TWPW" — when the frame
  // around it is corrupted, resync walks into the payload, sees the
  // aliased magic, fails the implied header's CRC, and keeps scanning
  // until the next *real* frame. The stream must recover regardless.
  uint32_t Magic = WireMagic;
  std::vector<uint8_t> AliasedPayload = encodeByePayload(7);
  for (int I = 0; I < 4; ++I)
    AliasedPayload.push_back(reinterpret_cast<uint8_t *>(&Magic)[I]);

  std::vector<uint8_t> Bytes;
  appendWireFrame(Bytes, 1, 0, AliasedPayload);
  Bytes[0] ^= 0xFF; // smash frame 0's own magic: resync from byte 1
  size_t FirstEnd = Bytes.size();
  appendWireFrame(Bytes, 1, 1, encodeHelloPayload(8));

  FrameDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  Decoder.finish();
  WireFrame Frame;
  ASSERT_TRUE(Decoder.next(Frame));
  EXPECT_EQ(Frame.Sequence, 1u); // the aliased magic did not desync us
  EXPECT_FALSE(Decoder.next(Frame));
  EXPECT_EQ(Decoder.stats().Frames, 1u);
  EXPECT_GE(Decoder.stats().ResyncBytes, FirstEnd - WireHeaderSize);
}

TEST(IngestWireTest, DecoderRejectsWrongVersion) {
  std::vector<uint8_t> Bytes;
  appendWireFrame(Bytes, 1, 0, encodeHelloPayload(8));
  uint32_t BadVersion = WireVersion + 1;
  std::memcpy(Bytes.data() + 4, &BadVersion, 4);
  appendWireFrame(Bytes, 1, 1, encodeByePayload(0));

  FrameDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  Decoder.finish();
  WireFrame Frame;
  ASSERT_TRUE(Decoder.next(Frame));
  EXPECT_EQ(Frame.Sequence, 1u);
  EXPECT_FALSE(Decoder.next(Frame));
}

} // namespace
