//===- tests/TestTraces.h - Shared fixture traces ---------------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 1 running example and small random-trace generators
/// shared by several test suites.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_TESTS_TESTTRACES_H
#define TWPP_TESTS_TESTTRACES_H

#include "support/Random.h"
#include "trace/Events.h"

#include <vector>

namespace twpp::fixtures {

/// The paper's Figure 1 WPP: main's loop runs five times calling f; f's
/// loop runs three times per call along one of two paths; the f calls
/// follow path2, path2, path1, path2, path1.
inline RawTrace figure1Trace() {
  RawTrace Trace;
  Trace.FunctionCount = 2; // 0 = main, 1 = f
  auto &E = Trace.Events;
  auto EmitF = [&E](bool SecondPath) {
    E.push_back(TraceEvent::enter(1));
    E.push_back(TraceEvent::block(1));
    for (int I = 0; I < 3; ++I) {
      if (SecondPath) {
        for (BlockId B : {2, 7, 8, 9, 6})
          E.push_back(TraceEvent::block(B));
      } else {
        for (BlockId B : {2, 3, 4, 5, 6})
          E.push_back(TraceEvent::block(B));
      }
    }
    E.push_back(TraceEvent::block(10));
    E.push_back(TraceEvent::exit());
  };

  E.push_back(TraceEvent::enter(0));
  E.push_back(TraceEvent::block(1));
  bool SecondPath[5] = {true, true, false, true, false};
  for (int Call = 0; Call < 5; ++Call) {
    E.push_back(TraceEvent::block(2));
    E.push_back(TraceEvent::block(3));
    EmitF(SecondPath[Call]);
    E.push_back(TraceEvent::block(4));
  }
  E.push_back(TraceEvent::block(6));
  E.push_back(TraceEvent::exit());
  return Trace;
}

/// A random but well-formed trace: random call nesting, random block ids.
/// Exercises the pipeline with unstructured inputs (no CFG discipline).
inline RawTrace randomTrace(uint64_t Seed, uint32_t FunctionCount = 5,
                            uint32_t MaxEvents = 4000) {
  Rng R(Seed);
  RawTrace Trace;
  Trace.FunctionCount = FunctionCount;
  auto &E = Trace.Events;
  uint32_t Depth = 0;
  E.push_back(TraceEvent::enter(
      static_cast<FunctionId>(R.nextBelow(FunctionCount))));
  Depth = 1;
  while (E.size() < MaxEvents && Depth > 0) {
    uint64_t Roll = R.nextBelow(10);
    if (Roll < 6) {
      E.push_back(TraceEvent::block(
          static_cast<BlockId>(1 + R.nextBelow(12))));
    } else if (Roll < 8 && Depth < 12) {
      E.push_back(TraceEvent::enter(
          static_cast<FunctionId>(R.nextBelow(FunctionCount))));
      ++Depth;
    } else {
      E.push_back(TraceEvent::exit());
      --Depth;
    }
  }
  while (Depth > 0) {
    E.push_back(TraceEvent::exit());
    --Depth;
  }
  return Trace;
}

} // namespace twpp::fixtures

#endif // TWPP_TESTS_TESTTRACES_H
