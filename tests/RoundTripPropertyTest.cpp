//===- tests/RoundTripPropertyTest.cpp - pipeline round-trip properties ----===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generator-driven property tests over the whole compaction pipeline:
/// raw trace -> partition -> DBB -> TWPP -> archive -> decode -> expand
/// must reproduce the original block sequences exactly. 20 seeds x 10
/// generated traces = 200 randomized cases, cycling through four trace
/// shapes (unstructured, empty-function-heavy, single-block calls,
/// recursion-heavy call trees) plus the degenerate empty trace.
///
//===----------------------------------------------------------------------===//

#include "wpp/Archive.h"
#include "wpp/Streaming.h"

#include "TestTraces.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace twpp;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

/// A trace where most functions never run: FunctionCount is much larger
/// than the set of ids actually called, so per-function tables (and
/// archive index rows) exist for functions with zero calls.
RawTrace emptyFunctionHeavyTrace(uint64_t Seed) {
  Rng R(Seed);
  RawTrace Trace;
  Trace.FunctionCount = 16;
  // Only ids {0, 3, 9} ever run.
  const FunctionId Used[3] = {0, 3, 9};
  auto &E = Trace.Events;
  uint64_t Calls = 1 + R.nextBelow(20);
  for (uint64_t C = 0; C != Calls; ++C) {
    E.push_back(TraceEvent::enter(Used[R.nextBelow(3)]));
    uint64_t Blocks = R.nextBelow(6);
    for (uint64_t B = 0; B != Blocks; ++B)
      E.push_back(TraceEvent::block(
          static_cast<BlockId>(1 + R.nextBelow(5))));
    E.push_back(TraceEvent::exit());
  }
  return Trace;
}

/// Every call executes exactly one block (the shortest non-empty path
/// trace), which stresses the DBB stage's short-trace bypass and the
/// TWPP single-timestamp sets.
RawTrace singleBlockTrace(uint64_t Seed) {
  Rng R(Seed);
  RawTrace Trace;
  Trace.FunctionCount = 4;
  auto &E = Trace.Events;
  uint64_t Calls = 1 + R.nextBelow(40);
  for (uint64_t C = 0; C != Calls; ++C) {
    E.push_back(TraceEvent::enter(
        static_cast<FunctionId>(R.nextBelow(Trace.FunctionCount))));
    E.push_back(TraceEvent::block(
        static_cast<BlockId>(1 + R.nextBelow(3))));
    E.push_back(TraceEvent::exit());
  }
  return Trace;
}

/// Deep recursive call trees: every frame may recurse into a random
/// function before and after its own blocks, up to a depth cap, so the
/// DCG is a deep tree with anchors in the middle of parent traces.
RawTrace recursionHeavyTrace(uint64_t Seed) {
  Rng R(Seed);
  RawTrace Trace;
  Trace.FunctionCount = 3;
  auto &E = Trace.Events;
  // Recursive descent without actual recursion: an explicit worklist of
  // (depth) frames emitting enter/blocks/maybe-child/blocks/exit.
  struct Frame {
    uint32_t Depth;
    int Phase; // 0 = just entered, 1 = after child, 2 = exiting
  };
  std::vector<Frame> Stack;
  auto EnterRandom = [&](uint32_t Depth) {
    E.push_back(TraceEvent::enter(
        static_cast<FunctionId>(R.nextBelow(Trace.FunctionCount))));
    Stack.push_back({Depth, 0});
  };
  EnterRandom(0);
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    uint64_t Blocks = R.nextBelow(4);
    for (uint64_t B = 0; B != Blocks; ++B)
      E.push_back(TraceEvent::block(
          static_cast<BlockId>(1 + R.nextBelow(4))));
    if (Top.Phase < 2 && Top.Depth < 30 && R.nextBool(0.7)) {
      ++Top.Phase;
      EnterRandom(Top.Depth + 1);
      continue;
    }
    E.push_back(TraceEvent::exit());
    Stack.pop_back();
  }
  return Trace;
}

RawTrace generateCase(uint64_t Seed, int Shape) {
  switch (Shape) {
  case 0:
    return fixtures::randomTrace(Seed, 6, 1500);
  case 1:
    return emptyFunctionHeavyTrace(Seed);
  case 2:
    return singleBlockTrace(Seed);
  default:
    return recursionHeavyTrace(Seed);
  }
}

/// Expands every stage inverse and the archive codec against the
/// original trace and its partitioned form.
void checkRoundTrip(const RawTrace &Trace, const std::string &PathTag) {
  ASSERT_TRUE(Trace.isWellFormed());

  // Stage inverses, one at a time.
  PartitionedWpp Partitioned = partitionWpp(Trace);
  DbbWpp Dbb = applyDbbCompaction(Partitioned);
  TwppWpp Twpp = convertToTwpp(Dbb);
  EXPECT_EQ(twppToDbb(Twpp), Dbb);
  EXPECT_EQ(dbbToPartitioned(Dbb), Partitioned);
  EXPECT_EQ(reconstructRawTrace(Twpp), Trace);

  // Per-function expansion answers the paper's query: the unique block
  // sequences and use counts of every function, including never-called
  // ones (empty tables).
  ASSERT_EQ(Twpp.Functions.size(), Partitioned.Functions.size());
  for (size_t F = 0; F < Twpp.Functions.size(); ++F) {
    FunctionPathTraces Expanded = expandFunctionTraces(Twpp.Functions[F]);
    EXPECT_EQ(Expanded.Traces, Partitioned.Functions[F].UniqueTraces);
    EXPECT_EQ(Expanded.UseCounts, Partitioned.Functions[F].UseCounts);
    EXPECT_EQ(Expanded.CallCount, Partitioned.Functions[F].CallCount);
  }

  // Through the on-disk archive and back — decoded on both the buffered
  // and the zero-copy read path, which must be structurally identical.
  std::string Path = tempPath("round_trip_" + PathTag + ".twpp");
  ASSERT_TRUE(writeArchiveFile(Path, Twpp));
  TwppWpp PerMode[2];
  for (IoMode Mode : {IoMode::Buffered, IoMode::Mmap}) {
    SCOPED_TRACE(ioModeName(Mode));
    ArchiveReader Reader;
    ASSERT_TRUE(Reader.open(Path, Mode));
    ASSERT_EQ(Reader.ioMode(), Mode);
    ASSERT_EQ(Reader.functionCount(), Twpp.Functions.size());
    TwppWpp &Back = PerMode[Mode == IoMode::Mmap ? 1 : 0];
    ASSERT_TRUE(Reader.readAll(Back));
    EXPECT_EQ(Back, Twpp);
    EXPECT_EQ(reconstructRawTrace(Back), Trace);
  }
  EXPECT_EQ(PerMode[0], PerMode[1]);
  std::remove(Path.c_str());
}

class RoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripProperty, RandomizedTraces) {
  uint64_t Seed = GetParam();
  Rng R(Seed * 7919 + 1);
  for (int Case = 0; Case < 10; ++Case) {
    RawTrace Trace = generateCase(R.next(), Case % 4);
    SCOPED_TRACE("seed " + std::to_string(Seed) + " case " +
                 std::to_string(Case));
    checkRoundTrip(Trace, std::to_string(Seed) + "_" +
                              std::to_string(Case));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range<uint64_t>(1, 21));

TEST(RoundTripEdgeCases, EmptyTrace) {
  RawTrace Trace;
  Trace.FunctionCount = 4;
  checkRoundTrip(Trace, "empty");
}

TEST(RoundTripEdgeCases, SingleCallSingleBlock) {
  RawTrace Trace;
  Trace.FunctionCount = 1;
  Trace.Events = {TraceEvent::enter(0), TraceEvent::block(1),
                  TraceEvent::exit()};
  checkRoundTrip(Trace, "single");
}

TEST(RoundTripEdgeCases, CallWithNoBlocks) {
  // A function that enters and exits without executing a block has an
  // empty path trace; it must survive every stage and the archive.
  RawTrace Trace;
  Trace.FunctionCount = 2;
  Trace.Events = {TraceEvent::enter(0), TraceEvent::block(1),
                  TraceEvent::enter(1), TraceEvent::exit(),
                  TraceEvent::block(2), TraceEvent::exit()};
  checkRoundTrip(Trace, "noblocks");
}

TEST(RoundTripEdgeCases, StreamingMatchesBatch) {
  // The online sink and the offline pipeline must agree on every shape
  // the generators produce.
  Rng R(424242);
  for (int Shape = 0; Shape < 4; ++Shape) {
    RawTrace Trace = generateCase(R.next(), Shape);
    StreamingCompactor Sink(Trace.FunctionCount);
    for (const TraceEvent &Event : Trace.Events) {
      switch (Event.EventKind) {
      case TraceEvent::Kind::Enter:
        Sink.onEnter(Event.Id);
        break;
      case TraceEvent::Kind::Block:
        Sink.onBlock(Event.Id);
        break;
      case TraceEvent::Kind::Exit:
        Sink.onExit();
        break;
      }
    }
    ASSERT_TRUE(Sink.balanced());
    EXPECT_EQ(Sink.takeCompacted(), compactWpp(Trace));
  }
}

} // namespace
