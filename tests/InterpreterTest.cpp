//===- tests/InterpreterTest.cpp - tracing interpreter ---------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "lang/Lower.h"
#include "wpp/Twpp.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

Module compile(const std::string &Source) {
  Module M;
  std::string Error;
  bool Ok = compileProgram(Source, M, Error);
  EXPECT_TRUE(Ok) << Error;
  return M;
}

TEST(InterpreterTest, ArithmeticAndPrint) {
  Module M = compile("fn main() { print 2 + 3 * 4; print (2 + 3) * 4; "
                     "print 10 / 3; print 10 % 3; print -7; print !0; }");
  ExecutionResult Result;
  traceExecution(M, {}, Result);
  ASSERT_TRUE(Result.Completed) << Result.Error;
  EXPECT_EQ(Result.Output, (std::vector<int64_t>{14, 20, 3, 1, -7, 1}));
}

TEST(InterpreterTest, DivisionByZeroYieldsZero) {
  Module M = compile("fn main() { read x; print 5 / x; print 5 % x; }");
  ExecutionResult Result;
  traceExecution(M, {0}, Result);
  ASSERT_TRUE(Result.Completed);
  EXPECT_EQ(Result.Output, (std::vector<int64_t>{0, 0}));
}

TEST(InterpreterTest, ReadsInputsInOrder) {
  Module M = compile("fn main() { read a; read b; print a - b; read c; "
                     "print c; }");
  ExecutionResult Result;
  traceExecution(M, {10, 4}, Result); // c exhausted -> 0
  ASSERT_TRUE(Result.Completed);
  EXPECT_EQ(Result.Output, (std::vector<int64_t>{6, 0}));
}

TEST(InterpreterTest, LoopComputesSum) {
  Module M = compile("fn main() {"
                     "  read n; s = 0; i = 1;"
                     "  while (i <= n) { s = s + i; i = i + 1; }"
                     "  print s;"
                     "}");
  ExecutionResult Result;
  traceExecution(M, {100}, Result);
  ASSERT_TRUE(Result.Completed);
  EXPECT_EQ(Result.Output, (std::vector<int64_t>{5050}));
}

TEST(InterpreterTest, RecursionViaCalls) {
  Module M = compile("fn fib(n) {"
                     "  if (n < 2) { return n; }"
                     "  a = call fib(n - 1);"
                     "  b = call fib(n - 2);"
                     "  return a + b;"
                     "}"
                     "fn main() { f = call fib(12); print f; }");
  ExecutionResult Result;
  RawTrace Trace = traceExecution(M, {}, Result);
  ASSERT_TRUE(Result.Completed) << Result.Error;
  EXPECT_EQ(Result.Output, (std::vector<int64_t>{144}));
  EXPECT_TRUE(Trace.isWellFormed());
  // fib(12) makes 465 calls; main makes 1.
  EXPECT_EQ(Trace.callCount(), 466u);
}

TEST(InterpreterTest, TraceMatchesExecutedPath) {
  Module M = compile("fn main() {"
                     "  read x;"
                     "  if (x > 0) { print 1; } else { print 2; }"
                     "}");
  ExecutionResult Result;
  RawTrace Positive = traceExecution(M, {5}, Result);
  RawTrace Negative = traceExecution(M, {-5}, Result);
  // entry=1, then=2, else=3, join=4.
  std::vector<TraceEvent> WantPositive = {
      TraceEvent::enter(0), TraceEvent::block(1), TraceEvent::block(2),
      TraceEvent::block(4), TraceEvent::exit()};
  std::vector<TraceEvent> WantNegative = {
      TraceEvent::enter(0), TraceEvent::block(1), TraceEvent::block(3),
      TraceEvent::block(4), TraceEvent::exit()};
  EXPECT_EQ(Positive.Events, WantPositive);
  EXPECT_EQ(Negative.Events, WantNegative);
}

TEST(InterpreterTest, BreakAndContinueSemantics) {
  Module M = compile("fn main() {"
                     "  i = 0;"
                     "  while (i < 100) {"
                     "    i = i + 1;"
                     "    if (i % 2 == 0) { continue; }"
                     "    if (i > 7) { break; }"
                     "    print i;"
                     "  }"
                     "  print i;"
                     "}");
  ExecutionResult Result;
  traceExecution(M, {}, Result);
  ASSERT_TRUE(Result.Completed) << Result.Error;
  // Odd values 1..7 printed, then 9 breaks out before printing.
  EXPECT_EQ(Result.Output, (std::vector<int64_t>{1, 3, 5, 7, 9}));
}

TEST(InterpreterTest, NestedLoopBreakBindsInnermost) {
  Module M = compile("fn main() {"
                     "  outer = 0; total = 0;"
                     "  while (outer < 3) {"
                     "    inner = 0;"
                     "    while (inner < 100) {"
                     "      inner = inner + 1;"
                     "      if (inner == 2) { break; }"
                     "    }"
                     "    total = total + inner;"
                     "    outer = outer + 1;"
                     "  }"
                     "  print total;"
                     "}");
  ExecutionResult Result;
  traceExecution(M, {}, Result);
  ASSERT_TRUE(Result.Completed);
  EXPECT_EQ(Result.Output, (std::vector<int64_t>{6}));
}

TEST(InterpreterTest, StepLimitAborts) {
  Module M = compile("fn main() { x = 1; while (x > 0) { x = x + 1; } }");
  CollectingSink Sink(1);
  Interpreter Interp(M, Sink);
  Interp.setStepLimit(1000);
  ExecutionResult Result = Interp.run({});
  EXPECT_FALSE(Result.Completed);
  EXPECT_NE(Result.Error.find("step limit"), std::string::npos);
  // Even the aborted trace is balanced and usable.
  EXPECT_TRUE(Sink.trace().isWellFormed());
}

TEST(InterpreterTest, DepthLimitAborts) {
  Module M = compile("fn loop() { call loop(); }"
                     "fn main() { call loop(); }");
  CollectingSink Sink(2);
  Interpreter Interp(M, Sink);
  Interp.setDepthLimit(50);
  ExecutionResult Result = Interp.run({});
  EXPECT_FALSE(Result.Completed);
  EXPECT_NE(Result.Error.find("depth limit"), std::string::npos);
  EXPECT_TRUE(Sink.trace().isWellFormed());
}

TEST(InterpreterTest, TracedProgramSurvivesFullPipeline) {
  Module M = compile("fn work(n) {"
                     "  t = 0; i = 0;"
                     "  while (i < n) { t = t + i; i = i + 1; }"
                     "  return t;"
                     "}"
                     "fn main() {"
                     "  k = 0;"
                     "  while (k < 20) {"
                     "    r = call work(k % 4);"
                     "    print r;"
                     "    k = k + 1;"
                     "  }"
                     "}");
  ExecutionResult Result;
  RawTrace Trace = traceExecution(M, {}, Result);
  ASSERT_TRUE(Result.Completed);
  TwppWpp Compacted = compactWpp(Trace);
  EXPECT_EQ(reconstructRawTrace(Compacted), Trace);
  // work() was called 20 times but has only 4 unique path traces.
  EXPECT_EQ(Compacted.Functions[0].CallCount, 20u);
  EXPECT_EQ(Compacted.Functions[0].Traces.size(), 4u);
}

} // namespace
