//===- tests/ObsTest.cpp - obs/ telemetry unit tests -----------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/PhaseSpan.h"
#include "obs/Trace.h"

#include "dataflow/AnnotatedCfg.h"
#include "dataflow/Query.h"
#include "sequitur/Sequitur.h"
#include "support/LZW.h"
#include "wpp/Archive.h"
#include "wpp/Twpp.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

using namespace twpp;

namespace {

/// Every test starts from a clean, enabled registry; collection is
/// restored to off so other binaries sharing the process stay unaffected.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::metrics().reset();
    obs::setMetricsEnabled(true);
  }
  void TearDown() override {
    obs::setMetricsEnabled(false);
    obs::metrics().reset();
  }
};

//===----------------------------------------------------------------------===//
// A minimal JSON syntax checker, enough to assert the exporters emit
// well-formed documents (objects, arrays, strings, numbers, literals).
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : Text(Text) {}

  bool valid() {
    skipSpace();
    if (!value())
      return false;
    skipSpace();
    return Pos == Text.size();
  }

private:
  bool value() {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipSpace();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      if (!string())
        return false;
      skipSpace();
      if (peek() != ':')
        return false;
      ++Pos;
      skipSpace();
      if (!value())
        return false;
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipSpace();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      if (!value())
        return false;
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\')
        ++Pos;
      ++Pos;
    }
    if (Pos >= Text.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }

  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  const std::string &Text;
  size_t Pos = 0;
};

uint64_t counterValue(const char *Name) {
  return obs::metrics().counter(Name).value();
}

//===----------------------------------------------------------------------===//
// Primitives
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, CounterAccumulates) {
  obs::Counter &C = obs::metrics().counter("test.counter");
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  EXPECT_EQ(counterValue("test.counter"), 42u);
}

TEST_F(ObsTest, CounterRegistrationIsStable) {
  obs::Counter &A = obs::metrics().counter("test.same");
  obs::Counter &B = obs::metrics().counter("test.same");
  EXPECT_EQ(&A, &B);
  A.add(7);
  EXPECT_EQ(B.value(), 7u);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  obs::Gauge &G = obs::metrics().gauge("test.gauge");
  G.set(100);
  G.add(-30);
  EXPECT_EQ(G.value(), 70);
}

TEST_F(ObsTest, HistogramBucketsAndStats) {
  obs::Histogram &H = obs::metrics().histogram("test.hist", {10, 100});
  for (uint64_t Sample : {1u, 10u, 11u, 100u, 1000u})
    H.record(Sample);
  std::vector<uint64_t> Counts = H.counts();
  ASSERT_EQ(Counts.size(), 3u); // <=10, <=100, overflow
  EXPECT_EQ(Counts[0], 2u);
  EXPECT_EQ(Counts[1], 2u);
  EXPECT_EQ(Counts[2], 1u);
  RunningStats S = H.stats();
  EXPECT_EQ(S.count(), 5u);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 1000.0);
  EXPECT_DOUBLE_EQ(S.p50(), 11.0); // exact below five samples
}

TEST_F(ObsTest, ResetZeroesInPlace) {
  obs::Counter &C = obs::metrics().counter("test.reset");
  C.add(5);
  obs::metrics().reset();
  EXPECT_EQ(C.value(), 0u); // same object, zeroed
  C.add(2);
  EXPECT_EQ(counterValue("test.reset"), 2u);
}

//===----------------------------------------------------------------------===//
// Disabled path
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, DisabledTracingRecordsNoEvents) {
  // This binary never turns tracing on, so the flight recorder must have
  // created no rings at all: spans and pool tasks throughout these tests
  // pay only the relaxed-load check, allocating nothing.
  ASSERT_FALSE(obs::tracingEnabled());
  { obs::PhaseSpan Span("metrics_only_span"); }
  EXPECT_TRUE(obs::traceRecorder().snapshot().empty());
}

TEST_F(ObsTest, DisabledCollectionIsANoOp) {
  obs::setMetricsEnabled(false);
  obs::metrics().counter("test.off").add(9);
  obs::metrics().gauge("test.off_gauge").set(9);
  obs::Histogram &H = obs::metrics().histogram("test.off_hist", {10});
  H.record(3);
  {
    obs::PhaseSpan Span("test_off_span");
    EXPECT_TRUE(Span.path().empty());
  }
  EXPECT_EQ(counterValue("test.off"), 0u);
  EXPECT_EQ(obs::metrics().gauge("test.off_gauge").value(), 0);
  EXPECT_EQ(H.stats().count(), 0u);
  EXPECT_TRUE(obs::metrics().spanSnapshot().empty());
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, SpanNestingBuildsHierarchicalPaths) {
  {
    obs::PhaseSpan Outer("outer");
    EXPECT_EQ(Outer.path(), "outer");
    {
      obs::PhaseSpan Inner("inner");
      EXPECT_EQ(Inner.path(), "outer/inner");
    }
    obs::PhaseSpan Sibling("sibling");
    EXPECT_EQ(Sibling.path(), "outer/sibling");
  }
  auto Spans = obs::metrics().spanSnapshot();
  ASSERT_EQ(Spans.size(), 3u);
  // Snapshot is ordered by path.
  EXPECT_EQ(Spans[0].Path, "outer");
  EXPECT_EQ(Spans[1].Path, "outer/inner");
  EXPECT_EQ(Spans[2].Path, "outer/sibling");
  EXPECT_EQ(Spans[0].Stats.Count, 1u);
  // The parent's self time excludes both children.
  EXPECT_GE(Spans[0].Stats.TotalUs,
            Spans[1].Stats.TotalUs + Spans[2].Stats.TotalUs);
  EXPECT_LE(Spans[0].Stats.SelfUs, Spans[0].Stats.TotalUs);
}

TEST_F(ObsTest, SpanCountsRepeatedCalls) {
  for (int I = 0; I < 3; ++I)
    obs::PhaseSpan Span("repeat");
  auto Spans = obs::metrics().spanSnapshot();
  ASSERT_EQ(Spans.size(), 1u);
  EXPECT_EQ(Spans[0].Stats.Count, 3u);
  EXPECT_EQ(Spans[0].Stats.DurationsUs.count(), 3u);
}

//===----------------------------------------------------------------------===//
// JSON emission helpers (obs/Json.h) — both exporters lean on these, so
// a hole in the escaper desynchronizes every downstream parser at once.
//===----------------------------------------------------------------------===//

TEST(ObsJson, StringLiteralEscapesQuotesAndBackslashes) {
  EXPECT_EQ(obs::jsonStringLiteral("plain"), "\"plain\"");
  EXPECT_EQ(obs::jsonStringLiteral("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(obs::jsonStringLiteral("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(obs::jsonStringLiteral(""), "\"\"");
}

TEST(ObsJson, StringLiteralEscapesEveryControlCharacter) {
  // All 32 control bytes become \u00xx — including the common ones, which
  // this escaper deliberately does not shorten to \n/\t.
  EXPECT_EQ(obs::jsonStringLiteral("a\nb"), "\"a\\u000ab\"");
  EXPECT_EQ(obs::jsonStringLiteral("\t"), "\"\\u0009\"");
  EXPECT_EQ(obs::jsonStringLiteral(std::string_view("\0", 1)),
            "\"\\u0000\"");
  for (int C = 0; C < 0x20; ++C) {
    char Raw = static_cast<char>(C);
    std::string Escaped = obs::jsonStringLiteral(std::string_view(&Raw, 1));
    char Expected[10];
    std::snprintf(Expected, sizeof(Expected), "\"\\u%04x\"", C);
    EXPECT_EQ(Escaped, Expected) << "control byte " << C;
  }
  // 0x7F (DEL) is not a JSON-mandated escape; it passes through.
  EXPECT_EQ(obs::jsonStringLiteral("\x7f"), "\"\x7f\"");
}

TEST(ObsJson, StringLiteralPassesMultiByteUtf8Through) {
  // High bytes must not be treated as negative chars and escaped: UTF-8
  // sequences (2-, 3- and 4-byte) pass through verbatim.
  EXPECT_EQ(obs::jsonStringLiteral("café"), "\"café\"");
  EXPECT_EQ(obs::jsonStringLiteral("λ→∞"), "\"λ→∞\"");
  EXPECT_EQ(obs::jsonStringLiteral("𝛑"), "\"𝛑\"");
  EXPECT_EQ(obs::jsonStringLiteral("mixed \"π\"\n"),
            "\"mixed \\\"π\\\"\\u000a\"");
}

TEST(ObsJson, NumberRejectsNonFiniteAndHugeValues) {
  // JSON has no NaN/Inf; the exporters emit a defensive zero rather than
  // corrupt the document. The cutoff is |x| > 1e300.
  EXPECT_EQ(obs::jsonNumber(std::nan("")), "0");
  EXPECT_EQ(obs::jsonNumber(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(obs::jsonNumber(-std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(obs::jsonNumber(1e301), "0");
  EXPECT_EQ(obs::jsonNumber(-1e301), "0");
  EXPECT_EQ(obs::jsonNumber(1e300), "1e+300");
}

TEST(ObsJson, NumberFormatsFiniteValuesCompactly) {
  EXPECT_EQ(obs::jsonNumber(0), "0");
  EXPECT_EQ(obs::jsonNumber(-7), "-7");
  EXPECT_EQ(obs::jsonNumber(12345), "12345");
  EXPECT_EQ(obs::jsonNumber(0.5), "0.5");
  // %.6g: six significant digits.
  EXPECT_EQ(obs::jsonNumber(1234567), "1.23457e+06");
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, JsonExportIsValidAndRoundTripsValues) {
  obs::metrics().counter("round.trip").add(12345);
  obs::metrics().gauge("round.gauge").set(-7);
  obs::metrics().histogram("round.hist", {10}).record(4);
  { obs::PhaseSpan Span("round_span"); }

  std::string Json = obs::exportMetricsJson(obs::metrics());
  JsonChecker Checker(Json);
  EXPECT_TRUE(Checker.valid()) << Json;
  EXPECT_NE(Json.find("\"round.trip\": 12345"), std::string::npos);
  EXPECT_NE(Json.find("\"round.gauge\": -7"), std::string::npos);
  EXPECT_NE(Json.find("\"round.hist\""), std::string::npos);
  EXPECT_NE(Json.find("\"round_span\""), std::string::npos);
  EXPECT_NE(Json.find("\"schema\": \"twpp-metrics-v1\""), std::string::npos);
}

TEST_F(ObsTest, JsonLinesExportIsValidPerLine) {
  obs::metrics().counter("lines.counter").add(3);
  { obs::PhaseSpan Span("lines_span"); }
  std::string Lines =
      obs::exportMetricsJsonLines(obs::metrics(), "unit-test");
  ASSERT_FALSE(Lines.empty());
  size_t Start = 0, LineCount = 0;
  while (Start < Lines.size()) {
    size_t End = Lines.find('\n', Start);
    ASSERT_NE(End, std::string::npos);
    std::string Line = Lines.substr(Start, End - Start);
    JsonChecker Checker(Line);
    EXPECT_TRUE(Checker.valid()) << Line;
    EXPECT_NE(Line.find("\"label\": \"unit-test\""), std::string::npos);
    ++LineCount;
    Start = End + 1;
  }
  EXPECT_GE(LineCount, 2u);
}

TEST_F(ObsTest, TableExportListsEveryKind) {
  obs::metrics().counter("table.counter").add(1);
  obs::metrics().gauge("table.gauge").set(2);
  obs::metrics().histogram("table.hist", {10}).record(5);
  { obs::PhaseSpan Span("table_span"); }
  std::string Table = obs::renderMetricsTable(obs::metrics());
  EXPECT_NE(Table.find("table.counter"), std::string::npos);
  EXPECT_NE(Table.find("table.gauge"), std::string::npos);
  EXPECT_NE(Table.find("table.hist"), std::string::npos);
  EXPECT_NE(Table.find("table_span"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Prometheus text exposition (--metrics-format=prom)
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, PromExportSanitizesNamesAndPrefixes) {
  obs::metrics().counter("partition.block_events").add(7);
  obs::metrics().gauge("weird name-with.dots").set(3);
  std::string Prom = obs::exportMetricsProm(obs::metrics());
  // Dots (and anything outside [a-zA-Z0-9_:]) flatten to '_' under the
  // twpp_ namespace; the raw name survives in HELP for humans.
  EXPECT_NE(Prom.find("# TYPE twpp_partition_block_events counter"),
            std::string::npos)
      << Prom;
  EXPECT_NE(Prom.find("\ntwpp_partition_block_events 7\n"),
            std::string::npos);
  EXPECT_NE(Prom.find("# TYPE twpp_weird_name_with_dots gauge"),
            std::string::npos);
  EXPECT_NE(Prom.find("\ntwpp_weird_name_with_dots 3\n"),
            std::string::npos);
  EXPECT_NE(Prom.find("# HELP twpp_partition_block_events TWPP counter "
                      "partition.block_events"),
            std::string::npos);
}

TEST_F(ObsTest, PromExportEscapesLabelValues) {
  {
    obs::PhaseSpan Hostile("path\"quote\\slash\nnewline");
  }
  std::string Prom = obs::exportMetricsProm(obs::metrics());
  // Exposition-format label escaping: \" for quote, \\ for backslash,
  // \n (two characters) for line feed — and no raw newline inside the
  // braces.
  EXPECT_NE(
      Prom.find("twpp_span_count{path=\"path\\\"quote\\\\slash\\nnewline\"}"),
      std::string::npos)
      << Prom;
  for (size_t At = Prom.find('{'); At != std::string::npos;
       At = Prom.find('{', At + 1)) {
    size_t Close = Prom.find('}', At);
    ASSERT_NE(Close, std::string::npos);
    EXPECT_EQ(Prom.find('\n', At), Prom.find('\n', Close))
        << "raw newline inside a label set";
  }
}

TEST_F(ObsTest, PromExportEmitsCumulativeHistogramBuckets) {
  obs::Histogram &H = obs::metrics().histogram("prom.hist", {10, 100});
  for (uint64_t Sample : {1u, 10u, 11u, 100u, 1000u})
    H.record(Sample);
  std::string Prom = obs::exportMetricsProm(obs::metrics());
  // Per-bucket counts 2/2/1 become cumulative 2/4/5 under le labels,
  // with le="+Inf" equal to _count.
  EXPECT_NE(Prom.find("# TYPE twpp_prom_hist histogram"), std::string::npos);
  EXPECT_NE(Prom.find("twpp_prom_hist_bucket{le=\"10\"} 2\n"),
            std::string::npos)
      << Prom;
  EXPECT_NE(Prom.find("twpp_prom_hist_bucket{le=\"100\"} 4\n"),
            std::string::npos);
  EXPECT_NE(Prom.find("twpp_prom_hist_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(Prom.find("twpp_prom_hist_count 5\n"), std::string::npos);
  // _sum is the sample total (mean x count): 1+10+11+100+1000 = 1122.
  // The mean is tracked incrementally, so compare numerically.
  size_t SumPos = Prom.find("twpp_prom_hist_sum ");
  ASSERT_NE(SumPos, std::string::npos);
  EXPECT_NEAR(std::strtod(Prom.c_str() + SumPos + 19, nullptr), 1122.0,
              1e-6);
}

TEST_F(ObsTest, PromExportCoversSpansWithPathLabels) {
  {
    obs::PhaseSpan Outer("outer");
    obs::PhaseSpan Inner("inner");
  }
  std::string Prom = obs::exportMetricsProm(obs::metrics());
  EXPECT_NE(Prom.find("twpp_span_count{path=\"outer\"} 1\n"),
            std::string::npos)
      << Prom;
  EXPECT_NE(Prom.find("twpp_span_count{path=\"outer/inner\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Prom.find("twpp_span_total_us{path=\"outer/inner\"}"),
            std::string::npos);
  EXPECT_NE(Prom.find("twpp_span_self_us{path=\"outer\"}"),
            std::string::npos);
  // Every non-comment line is "name{labels} value" or "name value" with
  // a numeric value.
  size_t Start = 0;
  while (Start < Prom.size()) {
    size_t End = Prom.find('\n', Start);
    ASSERT_NE(End, std::string::npos) << "missing trailing newline";
    std::string Line = Prom.substr(Start, End - Start);
    Start = End + 1;
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    char *Rest = nullptr;
    std::strtod(Line.c_str() + Space + 1, &Rest);
    EXPECT_EQ(*Rest, '\0') << "non-numeric sample value: " << Line;
  }
}

TEST_F(ObsTest, CanonicalRegistrationMakesExportsEnumerateAllStages) {
  obs::names::registerCanonicalMetrics(obs::metrics());
  std::string Json = obs::exportMetricsJson(obs::metrics());
  for (const char *Name :
       {obs::names::SequiturSymbols, obs::names::PartitionCalls,
        obs::names::DbbChains, obs::names::TimestampSets,
        obs::names::LzwCompressBytesIn, obs::names::ArchiveBlockReads,
        obs::names::DataflowQueries})
    EXPECT_NE(Json.find(std::string("\"") + Name + "\""), std::string::npos)
        << Name;
}

//===----------------------------------------------------------------------===//
// End-to-end: one pipeline run populates the expected metrics
//===----------------------------------------------------------------------===//

RawTrace loopyTrace() {
  RawTrace Trace;
  Trace.FunctionCount = 2;
  Trace.Events.push_back(TraceEvent::enter(0));
  for (int Iter = 0; Iter < 8; ++Iter) {
    Trace.Events.push_back(TraceEvent::block(1));
    Trace.Events.push_back(TraceEvent::enter(1));
    for (BlockId B = 1; B <= 6; ++B)
      Trace.Events.push_back(TraceEvent::block(B));
    Trace.Events.push_back(TraceEvent::exit());
    Trace.Events.push_back(TraceEvent::block(2));
  }
  Trace.Events.push_back(TraceEvent::exit());
  return Trace;
}

TEST_F(ObsTest, PipelineRunPopulatesEveryStage) {
  RawTrace Trace = loopyTrace();
  TwppWpp Compacted = compactWpp(Trace);

  std::string Path = ::testing::TempDir() + "obs_pipeline.twpp";
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));
  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  TwppFunctionTable Table;
  ASSERT_TRUE(Reader.extractFunction(1, Table));
  DynamicCallGraph Dcg;
  ASSERT_TRUE(Reader.readDcg(Dcg));

  buildSequiturGrammar(Trace);

  auto [StringIdx, DictIdx] = Table.Traces[0];
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfg(Table.TraceStrings[StringIdx],
                                              Table.Dictionaries[DictIdx]);
  ASSERT_FALSE(Cfg.Nodes.empty());
  // Query a DBB head: non-head blocks are folded into chains and are not
  // addressable nodes in the collapsed CFG.
  factFrequency(Cfg, Cfg.Nodes.back().Head,
                [](BlockId) { return BlockEffect::Gen; });

  // Counters from every stage of the pipeline must be populated.
  for (const char *Name :
       {obs::names::SequiturSymbols, obs::names::SequiturRulesCreated,
        obs::names::PartitionCalls, obs::names::PartitionUniqueTraces,
        obs::names::DbbLookups, obs::names::TimestampSets,
        obs::names::LzwCompressBytesIn, obs::names::ArchiveIndexReads,
        obs::names::ArchiveBlockReads, obs::names::DataflowQueries})
    EXPECT_GT(counterValue(Name), 0u) << Name;

  // Calls: 1 root call of f0 + 8 calls of f1; 8 share one unique trace.
  EXPECT_EQ(counterValue(obs::names::PartitionCalls), 9u);
  EXPECT_EQ(counterValue(obs::names::PartitionUniqueTraces), 2u);

  // Per-stage byte gauges are populated and shrink monotonically across
  // the dedup and dictionary stages.
  int64_t PartIn = obs::metrics().gauge(obs::names::PartitionBytesIn).value();
  int64_t PartOut =
      obs::metrics().gauge(obs::names::PartitionBytesOut).value();
  int64_t DbbIn = obs::metrics().gauge(obs::names::DbbBytesIn).value();
  int64_t DbbOut = obs::metrics().gauge(obs::names::DbbBytesOut).value();
  EXPECT_GT(PartIn, PartOut);
  EXPECT_EQ(PartOut, DbbIn);
  EXPECT_GE(DbbIn, DbbOut);
  EXPECT_GT(DbbOut, 0);

  // Spans exist for the pipeline stages, nested under "compact".
  std::string Json = obs::exportMetricsJson(obs::metrics());
  for (const char *SpanPath :
       {"\"compact\"", "\"compact/partition\"", "\"compact/dbb\"",
        "\"compact/twpp\"", "\"archive_open\"", "\"archive_extract\"",
        "\"sequitur\"", "\"dataflow_query\""})
    EXPECT_NE(Json.find(SpanPath), std::string::npos) << SpanPath;

  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Regression: ArchiveReader bounds checks for unknown function ids
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, ArchiveReaderRejectsUnknownFunctionIds) {
  TwppWpp Compacted = compactWpp(loopyTrace());
  std::string Path = ::testing::TempDir() + "obs_bounds.twpp";
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));
  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  ASSERT_EQ(Reader.functionCount(), 2u);
  // Out-of-range ids must not index the table (previously UB).
  EXPECT_EQ(Reader.callCount(2), 0u);
  EXPECT_EQ(Reader.callCount(0xFFFFFFFF), 0u);
  TwppFunctionTable Table;
  EXPECT_FALSE(Reader.extractFunction(2, Table));
  EXPECT_FALSE(Reader.extractFunction(0xFFFFFFFF, Table));
  std::remove(Path.c_str());
}

} // namespace
