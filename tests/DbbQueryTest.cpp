//===- tests/DbbQueryTest.cpp - queries over DBB-compacted CFGs ------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// The demand-driven engine must give identical answers whether the
// annotated dynamic CFG is built at raw block granularity or over
// DBB-compacted traces (where one node covers a chain of static blocks
// and chainEffect folds the chain's GEN/KILLs). These tests run the same
// queries both ways and compare resolution *counts* (timestamp
// coordinates legitimately differ between granularities).
//
//===----------------------------------------------------------------------===//

#include "dataflow/AnnotatedCfg.h"
#include "dataflow/Query.h"

#include "support/Random.h"
#include "wpp/Archive.h"
#include "wpp/Dbb.h"

#include "TestTraces.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace twpp;

namespace {

BlockEffect genKillEffect(BlockId Block) {
  if (Block == 1)
    return BlockEffect::Gen;
  if (Block == 6)
    return BlockEffect::Kill;
  return BlockEffect::Transparent;
}

/// Builds both views of the same path trace.
struct TwoViews {
  AnnotatedDynamicCfg Raw;
  AnnotatedDynamicCfg Compacted;

  explicit TwoViews(const PathTrace &Trace) {
    Raw = buildAnnotatedCfgFromSequence(Trace);
    CompactedTrace C = compactWithDbbs(Trace);
    Compacted = buildAnnotatedCfg(twppFromBlockSequence(C.Blocks),
                                  C.Dictionary);
  }
};

/// Frequency of the fact before every execution of the node whose
/// expansion *starts* with \p Block (in the compacted view the query
/// lands on the chain head).
FactFrequency queryOn(const AnnotatedDynamicCfg &Cfg, BlockId Head) {
  return factFrequency(Cfg, Head, genKillEffect);
}

TEST(DbbQueryTest, ChainFoldedKillMatchesRawView) {
  // 2.3.6 forms a chain ending in a kill; queries at 4 see the kill
  // through the folded chain effect.
  PathTrace Trace = {1, 2, 3, 6, 4, 1, 2, 3, 6, 4, 1, 4};
  TwoViews Views(Trace);

  FactFrequency RawFreq = queryOn(Views.Raw, 4);
  FactFrequency CompactedFreq = queryOn(Views.Compacted, 4);
  EXPECT_EQ(RawFreq.Total, 3u);
  EXPECT_EQ(RawFreq.Holds, 1u); // only the last 4, after a bare 1
  EXPECT_EQ(CompactedFreq.Total, RawFreq.Total);
  EXPECT_EQ(CompactedFreq.Holds, RawFreq.Holds);
  // The compacted view needs no more queries than the raw one.
  EXPECT_LE(CompactedFreq.QueriesGenerated, RawFreq.QueriesGenerated);
}

TEST(DbbQueryTest, GenInsideChainSurvivesFolding) {
  // The whole iteration 1.5.4 collapses to a single DBB headed by 1
  // (gen at the head). Querying "before the chain" sees the previous
  // iteration's gen; the first instance reaches the entry.
  PathTrace Trace = {1, 5, 4, 1, 5, 4, 1, 5, 4};
  TwoViews Views(Trace);
  ASSERT_EQ(Views.Compacted.Nodes.size(), 1u);
  FactFrequency RawFreq = queryOn(Views.Raw, 1);
  FactFrequency CompactedFreq = queryOn(Views.Compacted, 1);
  EXPECT_EQ(RawFreq.Total, 3u);
  EXPECT_EQ(RawFreq.Holds, 2u);
  EXPECT_EQ(CompactedFreq.Total, RawFreq.Total);
  EXPECT_EQ(CompactedFreq.Holds, RawFreq.Holds);
}

TEST(DbbQueryTest, KillThenGenInsideOneChain) {
  // Chain 6.1.4 contains a kill followed by a gen: backward queries
  // through it must resolve Gen (the last non-transparent member).
  PathTrace Trace = {6, 1, 4, 6, 1, 4};
  TwoViews Views(Trace);
  FactFrequency RawFreq = queryOn(Views.Raw, 6);
  FactFrequency CompactedFreq = queryOn(Views.Compacted, 6);
  EXPECT_EQ(RawFreq.Total, 2u);
  EXPECT_EQ(RawFreq.Holds, 1u); // second instance sees the gen at 1
  EXPECT_EQ(CompactedFreq.Total, RawFreq.Total);
  EXPECT_EQ(CompactedFreq.Holds, RawFreq.Holds);
}

/// Property sweep: raw and compacted views agree on hold/total counts
/// for every queryable head block.
class DbbQueryEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DbbQueryEquivalence, RandomLoopTraces) {
  Rng R(GetParam());
  for (int Iter = 0; Iter < 25; ++Iter) {
    // Loop-structured random trace so chains actually form.
    PathTrace Trace;
    size_t Loops = 1 + R.nextBelow(20);
    std::vector<BlockId> Body;
    size_t BodyLength = 2 + R.nextBelow(5);
    for (size_t I = 0; I < BodyLength; ++I)
      Body.push_back(1 + static_cast<BlockId>(R.nextBelow(8)));
    for (size_t L = 0; L < Loops; ++L) {
      for (BlockId B : Body)
        Trace.push_back(B);
      if (R.nextBool(0.3))
        Trace.push_back(1 + static_cast<BlockId>(R.nextBelow(8)));
    }

    TwoViews Views(Trace);
    // Query every head that exists in the compacted view: its raw
    // counterpart is the same static block (chain heads are entered at
    // their first block, so instance counts coincide).
    for (const AnnotatedNode &Node : Views.Compacted.Nodes) {
      FactFrequency CompactedFreq = queryOn(Views.Compacted, Node.Head);
      FactFrequency RawFreq = queryOn(Views.Raw, Node.Head);
      EXPECT_EQ(CompactedFreq.Total, RawFreq.Total)
          << "head " << Node.Head << " iter " << Iter;
      EXPECT_EQ(CompactedFreq.Holds, RawFreq.Holds)
          << "head " << Node.Head << " iter " << Iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbbQueryEquivalence,
                         ::testing::Values(81, 82, 83, 84, 85, 86));

TEST(DbbQueryTest, ArchiveRoutedQueriesAgreeAcrossIoModes) {
  // End-to-end differential: route path traces through an on-disk
  // archive, extract them via both read paths, and run the demand-driven
  // queries over CFGs built from each side. Every extracted structure
  // and every query answer must be identical.
  RawTrace Trace = fixtures::randomTrace(4242, 6, 2000);
  TwppWpp Compacted = compactWpp(Trace);
  std::string Path = ::testing::TempDir() + "/dbb_query_io_modes.twpp";
  ASSERT_TRUE(writeArchiveFile(Path, Compacted));

  ArchiveReader Buffered, Mapped;
  ASSERT_TRUE(Buffered.open(Path, IoMode::Buffered));
  ASSERT_TRUE(Mapped.open(Path, IoMode::Mmap));
  ASSERT_EQ(Mapped.ioMode(), IoMode::Mmap);

  for (FunctionId F = 0; F != Buffered.functionCount(); ++F) {
    FunctionPathTraces FromBuffered, FromMapped;
    ASSERT_TRUE(Buffered.extractFunctionPathTraces(F, FromBuffered));
    ASSERT_TRUE(Mapped.extractFunctionPathTraces(F, FromMapped));
    ASSERT_EQ(FromBuffered.Traces, FromMapped.Traces);
    ASSERT_EQ(FromBuffered.UseCounts, FromMapped.UseCounts);
    ASSERT_EQ(FromBuffered.CallCount, FromMapped.CallCount);

    for (size_t T = 0; T != FromBuffered.Traces.size(); ++T) {
      if (FromBuffered.Traces[T].empty())
        continue;
      AnnotatedDynamicCfg CfgA =
          buildAnnotatedCfgFromSequence(FromBuffered.Traces[T]);
      AnnotatedDynamicCfg CfgB =
          buildAnnotatedCfgFromSequence(FromMapped.Traces[T]);
      for (const AnnotatedNode &Node : CfgA.Nodes) {
        FactFrequency A = queryOn(CfgA, Node.Head);
        FactFrequency B = queryOn(CfgB, Node.Head);
        EXPECT_EQ(A.Total, B.Total) << "fn " << F << " head " << Node.Head;
        EXPECT_EQ(A.Holds, B.Holds) << "fn " << F << " head " << Node.Head;
        EXPECT_EQ(A.QueriesGenerated, B.QueriesGenerated);
      }
    }
  }
  std::remove(Path.c_str());
}

} // namespace
