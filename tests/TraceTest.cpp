//===- tests/TraceTest.cpp - trace/ unit tests -----------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "trace/Events.h"
#include "trace/UncompactedFile.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace twpp;

namespace {

/// The paper's Figure 1 example: main loops five times, calling f each
/// iteration; f's loop runs three times per call, along one of two paths.
RawTrace figure1Trace() {
  RawTrace Trace;
  Trace.FunctionCount = 2; // 0 = main, 1 = f
  auto &E = Trace.Events;
  auto EmitF = [&E](bool SecondPath) {
    E.push_back(TraceEvent::enter(1));
    E.push_back(TraceEvent::block(1));
    for (int I = 0; I < 3; ++I) {
      if (SecondPath) {
        for (BlockId B : {2, 7, 8, 9, 6})
          E.push_back(TraceEvent::block(B));
      } else {
        for (BlockId B : {2, 3, 4, 5, 6})
          E.push_back(TraceEvent::block(B));
      }
    }
    E.push_back(TraceEvent::block(10));
    E.push_back(TraceEvent::exit());
  };

  E.push_back(TraceEvent::enter(0));
  E.push_back(TraceEvent::block(1));
  bool SecondPath[5] = {true, true, false, true, false};
  for (int Call = 0; Call < 5; ++Call) {
    E.push_back(TraceEvent::block(2));
    E.push_back(TraceEvent::block(3));
    EmitF(SecondPath[Call]);
    E.push_back(TraceEvent::block(4));
  }
  E.push_back(TraceEvent::block(6));
  E.push_back(TraceEvent::exit());
  return Trace;
}

TEST(RawTraceTest, WellFormedness) {
  RawTrace Trace = figure1Trace();
  EXPECT_TRUE(Trace.isWellFormed());
  EXPECT_EQ(Trace.callCount(), 6u); // main + five calls to f

  // Block outside a call.
  RawTrace Bad1;
  Bad1.FunctionCount = 1;
  Bad1.Events = {TraceEvent::block(1)};
  EXPECT_FALSE(Bad1.isWellFormed());

  // Unbalanced exit.
  RawTrace Bad2;
  Bad2.FunctionCount = 1;
  Bad2.Events = {TraceEvent::enter(0), TraceEvent::exit(),
                 TraceEvent::exit()};
  EXPECT_FALSE(Bad2.isWellFormed());

  // Function id out of range.
  RawTrace Bad3;
  Bad3.FunctionCount = 1;
  Bad3.Events = {TraceEvent::enter(1), TraceEvent::exit()};
  EXPECT_FALSE(Bad3.isWellFormed());
}

TEST(RawTraceTest, CollectingSinkAccumulates) {
  CollectingSink Sink(3);
  Sink.onEnter(2);
  Sink.onBlock(7);
  Sink.onExit();
  RawTrace Trace = Sink.take();
  ASSERT_EQ(Trace.Events.size(), 3u);
  EXPECT_EQ(Trace.Events[0], TraceEvent::enter(2));
  EXPECT_EQ(Trace.Events[1], TraceEvent::block(7));
  EXPECT_EQ(Trace.Events[2], TraceEvent::exit());
  EXPECT_TRUE(Trace.isWellFormed());
}

TEST(UncompactedFileTest, EncodeDecodeRoundTrip) {
  RawTrace Trace = figure1Trace();
  RawTrace Back;
  ASSERT_TRUE(decodeUncompactedTrace(encodeUncompactedTrace(Trace), Back));
  EXPECT_EQ(Back, Trace);
}

TEST(UncompactedFileTest, RejectsCorruptMagic) {
  std::vector<uint8_t> Bytes = encodeUncompactedTrace(figure1Trace());
  Bytes[0] ^= 0xFF;
  RawTrace Back;
  EXPECT_FALSE(decodeUncompactedTrace(Bytes, Back));
}

TEST(UncompactedFileTest, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/twpp_owpp_test.bin";
  RawTrace Trace = figure1Trace();
  ASSERT_TRUE(writeUncompactedTraceFile(Path, Trace));
  RawTrace Back;
  ASSERT_TRUE(readUncompactedTraceFile(Path, Back));
  EXPECT_EQ(Back, Trace);
  std::remove(Path.c_str());
}

TEST(ExtractionTest, FindsEveryCallOfFunction) {
  RawTrace Trace = figure1Trace();
  std::vector<std::vector<BlockId>> Traces;
  extractFunctionTraces(Trace, 1, Traces);
  ASSERT_EQ(Traces.size(), 5u);
  // Calls 1, 2 and 4 took the second path; calls 3 and 5 the first
  // (paper Figure 1 verbatim).
  std::vector<BlockId> First = {1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6,
                                2, 3, 4, 5, 6, 10};
  std::vector<BlockId> Second = {1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6,
                                 2, 7, 8, 9, 6, 10};
  EXPECT_EQ(Traces[0], Second);
  EXPECT_EQ(Traces[1], Second);
  EXPECT_EQ(Traces[2], First);
  EXPECT_EQ(Traces[3], Second);
  EXPECT_EQ(Traces[4], First);
}

TEST(ExtractionTest, MainTraceExcludesCalleeBlocks) {
  RawTrace Trace = figure1Trace();
  std::vector<std::vector<BlockId>> Traces;
  extractFunctionTraces(Trace, 0, Traces);
  ASSERT_EQ(Traces.size(), 1u);
  std::vector<BlockId> Main = {1, 2, 3, 4, 2, 3, 4, 2, 3, 4,
                               2, 3, 4, 2, 3, 4, 6};
  EXPECT_EQ(Traces[0], Main);
}

TEST(ExtractionTest, AbsentFunctionYieldsNothing) {
  RawTrace Trace = figure1Trace();
  Trace.FunctionCount = 3;
  std::vector<std::vector<BlockId>> Traces;
  extractFunctionTraces(Trace, 2, Traces);
  EXPECT_TRUE(Traces.empty());
}

} // namespace
