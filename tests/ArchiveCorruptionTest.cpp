//===- tests/ArchiveCorruptionTest.cpp - corrupt-archive robustness --------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fuzz-style robustness tests: an ArchiveReader fed truncated, patched
/// or bit-flipped archive files must fail cleanly (open/extractFunction/
/// readDcg returning false) or, where a flip happens to decode, produce a
/// well-formed wrong result — never crash, hang, or over-allocate.
///
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"
#include "support/Random.h"
#include "workloads/Workload.h"
#include "wpp/Archive.h"

#include "TestTraces.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace twpp;

namespace {

// Mirrors the layout constants in Archive.cpp (wpp/Archive.h documents
// them): 12-byte prefix, 16 bytes of DCG extent fields, 24-byte index
// rows. The tests patch raw offsets, so drift here must fail loudly —
// LayoutAssumptions below pins the values.
constexpr size_t PrefixSize = 12;
constexpr size_t DcgFieldsSize = 16;
constexpr size_t IndexStart = PrefixSize + DcgFieldsSize;
constexpr size_t IndexRowSize = 24;

uint64_t readLe64(const std::vector<uint8_t> &Bytes, size_t At) {
  uint64_t Value = 0;
  for (int I = 0; I < 8; ++I)
    Value |= static_cast<uint64_t>(Bytes[At + I]) << (8 * I);
  return Value;
}

void writeLe64(std::vector<uint8_t> &Bytes, size_t At, uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Bytes[At + I] = static_cast<uint8_t>(Value >> (8 * I));
}

/// A healthy archive (bytes + decoded form) shared by every test. The
/// fixture is parameterized over IoMode: every corruption must be caught
/// identically on the buffered and the zero-copy (mmap) read path.
class ArchiveCorruption : public ::testing::TestWithParam<IoMode> {
protected:
  static void SetUpTestSuite() {
    RawTrace Trace = fixtures::randomTrace(2024, 6, 3000);
    Original = new TwppWpp(compactWpp(Trace));
    Bytes = new std::vector<uint8_t>(encodeArchive(*Original));
  }

  static void TearDownTestSuite() {
    delete Original;
    delete Bytes;
    Original = nullptr;
    Bytes = nullptr;
  }

  /// Writes \p Variant to a temp file and returns its path.
  /// Distinguishes the IoMode instances of one test, which run as
  /// concurrent ctest processes and must not race on variant files.
  /// The non-parameterized differential fixture overrides this —
  /// GetParam() would abort there.
  virtual std::string variantSuffix() {
    return GetParam() == IoMode::Mmap ? "_mmap" : "_buffered";
  }

  std::string writeVariant(const std::vector<uint8_t> &Variant,
                           const std::string &Name) {
    std::string Path =
        ::testing::TempDir() + "/corrupt_" + Name + variantSuffix() + ".twpp";
    EXPECT_TRUE(writeFileBytes(Path, Variant));
    Cleanup.push_back(Path);
    return Path;
  }

  void TearDown() override {
    for (const std::string &Path : Cleanup)
      std::remove(Path.c_str());
  }

  static TwppWpp *Original;
  static std::vector<uint8_t> *Bytes;
  std::vector<std::string> Cleanup;
};

TwppWpp *ArchiveCorruption::Original = nullptr;
std::vector<uint8_t> *ArchiveCorruption::Bytes = nullptr;

INSTANTIATE_TEST_SUITE_P(IoModes, ArchiveCorruption,
                         ::testing::Values(IoMode::Buffered, IoMode::Mmap),
                         [](const ::testing::TestParamInfo<IoMode> &Info) {
                           return ioModeName(Info.param);
                         });

/// Mode-pair differential tests (open both readers themselves, so they
/// are not parameterized); shares the healthy archive via inheritance.
class ArchiveCorruptionDifferential : public ArchiveCorruption {
protected:
  std::string variantSuffix() override { return "_diff"; }
};

TEST_P(ArchiveCorruption, LayoutAssumptions) {
  // Sanity-pin the layout the other tests patch against: magic "TWPP"
  // little-endian at byte 0, DCG extent fields at 12, index at 28.
  ASSERT_GE(Bytes->size(), IndexStart);
  EXPECT_EQ((*Bytes)[0], 0x50); // 'P'
  EXPECT_EQ((*Bytes)[1], 0x50); // 'P'
  EXPECT_EQ((*Bytes)[2], 0x57); // 'W'
  EXPECT_EQ((*Bytes)[3], 0x54); // 'T'
  uint64_t DcgOffset = readLe64(*Bytes, PrefixSize);
  uint64_t DcgLength = readLe64(*Bytes, PrefixSize + 8);
  EXPECT_LE(DcgOffset + DcgLength, Bytes->size());
  EXPECT_GT(DcgLength, 0u);
}

TEST_P(ArchiveCorruption, SanityHealthyArchiveRoundTrips) {
  std::string Path = writeVariant(*Bytes, "healthy");
  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path, GetParam()));
  TwppWpp Back;
  ASSERT_TRUE(Reader.readAll(Back));
  EXPECT_EQ(Back, *Original);
}

TEST_P(ArchiveCorruption, TruncatedHeaderFailsOpen) {
  // Every prefix shorter than header + DCG fields + full index must be
  // rejected at open(); a zero-byte file included.
  size_t IndexEnd = IndexStart + Original->Functions.size() * IndexRowSize;
  for (size_t Length : {size_t(0), size_t(1), size_t(4), size_t(11),
                        PrefixSize, size_t(20), IndexStart - 1, IndexStart,
                        IndexStart + 5, IndexEnd - 1}) {
    std::vector<uint8_t> Truncated(Bytes->begin(),
                                   Bytes->begin() +
                                       static_cast<long>(Length));
    std::string Path =
        writeVariant(Truncated, "trunc_" + std::to_string(Length));
    ArchiveReader Reader;
    EXPECT_FALSE(Reader.open(Path, GetParam())) << "prefix length " << Length;
  }
}

TEST_P(ArchiveCorruption, BadMagicOrVersionFailsOpen) {
  for (size_t Byte : {size_t(0), size_t(4)}) {
    std::vector<uint8_t> Variant = *Bytes;
    Variant[Byte] ^= 0xFF;
    std::string Path = writeVariant(Variant, "hdr_" + std::to_string(Byte));
    ArchiveReader Reader;
    EXPECT_FALSE(Reader.open(Path, GetParam())) << "flipped header byte " << Byte;
  }
}

TEST_P(ArchiveCorruption, HugeFunctionCountFailsOpen) {
  // A function count whose index alone would exceed the file must be
  // rejected before any allocation proportional to it.
  std::vector<uint8_t> Variant = *Bytes;
  Variant[8] = 0xFF;
  Variant[9] = 0xFF;
  Variant[10] = 0xFF;
  Variant[11] = 0x7F;
  std::string Path = writeVariant(Variant, "hugecount");
  ArchiveReader Reader;
  EXPECT_FALSE(Reader.open(Path, GetParam()));
}

TEST_P(ArchiveCorruption, IndexRowPastEofFailsOpen) {
  const size_t FunctionCount = Original->Functions.size();
  ASSERT_GT(FunctionCount, 0u);
  for (size_t F : {size_t(0), FunctionCount / 2, FunctionCount - 1}) {
    size_t Row = IndexStart + F * IndexRowSize;
    {
      // Offset beyond the file.
      std::vector<uint8_t> Variant = *Bytes;
      writeLe64(Variant, Row, Bytes->size() + 1000);
      std::string Path =
          writeVariant(Variant, "idx_off_" + std::to_string(F));
      ArchiveReader Reader;
      EXPECT_FALSE(Reader.open(Path, GetParam())) << "row " << F << " offset past EOF";
    }
    {
      // Length running past the end of the file.
      std::vector<uint8_t> Variant = *Bytes;
      writeLe64(Variant, Row + 8, Bytes->size());
      std::string Path =
          writeVariant(Variant, "idx_len_" + std::to_string(F));
      ArchiveReader Reader;
      EXPECT_FALSE(Reader.open(Path, GetParam())) << "row " << F << " length past EOF";
    }
    {
      // Offset + length overflowing uint64 must not wrap past the check.
      std::vector<uint8_t> Variant = *Bytes;
      writeLe64(Variant, Row, ~uint64_t(0) - 8);
      writeLe64(Variant, Row + 8, 1000);
      std::string Path =
          writeVariant(Variant, "idx_wrap_" + std::to_string(F));
      ArchiveReader Reader;
      EXPECT_FALSE(Reader.open(Path, GetParam())) << "row " << F << " extent overflow";
    }
  }
}

TEST_P(ArchiveCorruption, DcgExtentPastEofFailsOpen) {
  {
    std::vector<uint8_t> Variant = *Bytes;
    writeLe64(Variant, PrefixSize, Bytes->size() + 1);
    std::string Path = writeVariant(Variant, "dcg_off");
    ArchiveReader Reader;
    EXPECT_FALSE(Reader.open(Path, GetParam()));
  }
  {
    std::vector<uint8_t> Variant = *Bytes;
    writeLe64(Variant, PrefixSize + 8, Bytes->size());
    std::string Path = writeVariant(Variant, "dcg_len");
    ArchiveReader Reader;
    EXPECT_FALSE(Reader.open(Path, GetParam()));
  }
}

TEST_P(ArchiveCorruption, BitFlippedDcgFailsOrDiffers) {
  // Bit flips inside the LZW-compressed DCG: readDcg must either reject
  // the stream or decode to something well-formed; it must never crash.
  // Most flips corrupt the LZW code stream or the DCG framing and are
  // rejected; a rare flip may survive as a different graph.
  uint64_t DcgOffset = readLe64(*Bytes, PrefixSize);
  uint64_t DcgLength = readLe64(*Bytes, PrefixSize + 8);
  ASSERT_GT(DcgLength, 0u);
  Rng R(7);
  int Rejected = 0;
  for (int Case = 0; Case < 24; ++Case) {
    std::vector<uint8_t> Variant = *Bytes;
    size_t At = static_cast<size_t>(DcgOffset + R.nextBelow(DcgLength));
    Variant[At] ^= static_cast<uint8_t>(1u << R.nextBelow(8));
    std::string Path = writeVariant(Variant, "dcg_" + std::to_string(Case));
    ArchiveReader Reader;
    // Index is intact; only the DCG is hit.
    ASSERT_TRUE(Reader.open(Path, GetParam()))
        << Reader.lastError().CheckId << ": " << Reader.lastError().Message
        << " (" << Reader.lastError().Location << ")";
    DynamicCallGraph Dcg;
    if (!Reader.readDcg(Dcg)) {
      ++Rejected;
      continue;
    }
    EXPECT_NE(Dcg, Original->Dcg) << "flip at " << At << " was a no-op";
  }
  // The stream is dense: the overwhelming majority of flips must be
  // detected outright, not silently absorbed.
  EXPECT_GE(Rejected, 12);
}

TEST_P(ArchiveCorruption, BitFlippedFunctionBlockFailsOrDiffers) {
  // Flips inside function blocks: extractFunction must reject or decode
  // to a (well-formed) different table, never crash or over-allocate.
  const size_t FunctionCount = Original->Functions.size();
  Rng R(11);
  for (int Case = 0; Case < 24; ++Case) {
    size_t F = R.nextBelow(FunctionCount);
    size_t Row = IndexStart + F * IndexRowSize;
    uint64_t Offset = readLe64(*Bytes, Row);
    uint64_t Length = readLe64(*Bytes, Row + 8);
    if (Length == 0)
      continue; // Never-called function, empty block: nothing to flip.
    std::vector<uint8_t> Variant = *Bytes;
    size_t At = static_cast<size_t>(Offset + R.nextBelow(Length));
    Variant[At] ^= static_cast<uint8_t>(1u << R.nextBelow(8));
    std::string Path = writeVariant(Variant, "blk_" + std::to_string(Case));
    ArchiveReader Reader;
    ASSERT_TRUE(Reader.open(Path, GetParam()));
    TwppFunctionTable Table;
    if (Reader.extractFunction(static_cast<FunctionId>(F), Table)) {
      EXPECT_NE(Table, Original->Functions[F])
          << "flip at " << At << " was a no-op";
    }
  }
}

TEST_P(ArchiveCorruption, TruncatedFunctionBlockFailsExtract) {
  // Shorten a block via its index length: the decoder must hit the hard
  // end of the slice and reject, not read past it.
  const size_t FunctionCount = Original->Functions.size();
  size_t Victim = FunctionCount; // First function with a non-trivial block.
  for (size_t F = 0; F < FunctionCount; ++F)
    if (readLe64(*Bytes, IndexStart + F * IndexRowSize + 8) > 4) {
      Victim = F;
      break;
    }
  ASSERT_LT(Victim, FunctionCount) << "fixture has no non-trivial block";
  size_t Row = IndexStart + Victim * IndexRowSize;
  uint64_t Length = readLe64(*Bytes, Row + 8);
  for (uint64_t Cut : {Length / 2, Length - 1}) {
    std::vector<uint8_t> Variant = *Bytes;
    writeLe64(Variant, Row + 8, Cut);
    std::string Path =
        writeVariant(Variant, "cutblk_" + std::to_string(Cut));
    ArchiveReader Reader;
    ASSERT_TRUE(Reader.open(Path, GetParam()));
    TwppFunctionTable Table;
    EXPECT_FALSE(
        Reader.extractFunction(static_cast<FunctionId>(Victim), Table))
        << "block cut to " << Cut << " of " << Length << " bytes";
  }
}

TEST_P(ArchiveCorruption, ExtractBeyondFunctionCountFails) {
  std::string Path = writeVariant(*Bytes, "range");
  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path, GetParam()));
  TwppFunctionTable Table;
  EXPECT_FALSE(Reader.extractFunction(
      static_cast<FunctionId>(Original->Functions.size()), Table));
  EXPECT_FALSE(Reader.extractFunction(~FunctionId(0), Table));
}

TEST_F(ArchiveCorruptionDifferential, DiagnosticsIdenticalAcrossIoModes) {
  // Representative corruptions: the failure DIAGNOSTIC — check id,
  // location, message and byte offset — must be byte-identical whether
  // the archive was read buffered or memory-mapped. A divergence here
  // means the two paths take different validation routes.
  struct Case {
    const char *Name;
    std::vector<uint8_t> Variant;
  };
  std::vector<Case> Cases;
  Cases.push_back({"empty", {}});
  {
    std::vector<uint8_t> V(Bytes->begin(), Bytes->begin() + 20);
    Cases.push_back({"short_header", std::move(V)});
  }
  {
    std::vector<uint8_t> V = *Bytes;
    V[0] ^= 0xFF;
    Cases.push_back({"bad_magic", std::move(V)});
  }
  {
    std::vector<uint8_t> V = *Bytes;
    writeLe64(V, IndexStart, Bytes->size() + 1000);
    Cases.push_back({"index_past_eof", std::move(V)});
  }
  {
    std::vector<uint8_t> V = *Bytes;
    writeLe64(V, PrefixSize, Bytes->size() + 1);
    Cases.push_back({"dcg_past_eof", std::move(V)});
  }

  for (Case &C : Cases) {
    std::string Path = writeVariant(C.Variant, std::string("diff_") + C.Name);
    ArchiveReader Buffered, Mapped;
    EXPECT_FALSE(Buffered.open(Path, IoMode::Buffered)) << C.Name;
    EXPECT_FALSE(Mapped.open(Path, IoMode::Mmap)) << C.Name;
    const verify::Diagnostic &A = Buffered.lastError();
    const verify::Diagnostic &B = Mapped.lastError();
    EXPECT_EQ(A.CheckId, B.CheckId) << C.Name;
    EXPECT_EQ(A.Location, B.Location) << C.Name;
    EXPECT_EQ(A.Message, B.Message) << C.Name;
    EXPECT_EQ(A.ByteOffset, B.ByteOffset) << C.Name;
  }
}

TEST_F(ArchiveCorruptionDifferential, TruncatedBlockDecodeAgreesAcrossModes) {
  // Cut a function block's index length at every stride and compare
  // extractFunction outcomes AND diagnostics across modes.
  const size_t FunctionCount = Original->Functions.size();
  size_t Victim = FunctionCount;
  for (size_t F = 0; F < FunctionCount; ++F)
    if (readLe64(*Bytes, IndexStart + F * IndexRowSize + 8) > 8) {
      Victim = F;
      break;
    }
  ASSERT_LT(Victim, FunctionCount);
  size_t Row = IndexStart + Victim * IndexRowSize;
  uint64_t Length = readLe64(*Bytes, Row + 8);
  for (uint64_t Cut = 0; Cut < Length; Cut += 1 + Length / 16) {
    std::vector<uint8_t> Variant = *Bytes;
    writeLe64(Variant, Row + 8, Cut);
    std::string Path =
        writeVariant(Variant, "diffcut_" + std::to_string(Cut));
    ArchiveReader Buffered, Mapped;
    ASSERT_TRUE(Buffered.open(Path, IoMode::Buffered));
    ASSERT_TRUE(Mapped.open(Path, IoMode::Mmap));
    TwppFunctionTable TableA, TableB;
    bool OkA = Buffered.extractFunction(static_cast<FunctionId>(Victim),
                                        TableA);
    bool OkB = Mapped.extractFunction(static_cast<FunctionId>(Victim),
                                      TableB);
    EXPECT_EQ(OkA, OkB) << "cut " << Cut << " of " << Length;
    if (OkA && OkB) {
      EXPECT_EQ(TableA, TableB);
    } else {
      EXPECT_EQ(Buffered.lastError().CheckId, Mapped.lastError().CheckId);
      EXPECT_EQ(Buffered.lastError().Message, Mapped.lastError().Message);
    }
  }
}

TEST_P(ArchiveCorruption, MissingFileFailsOpen) {
  ArchiveReader Reader;
  EXPECT_FALSE(Reader.open(::testing::TempDir() + "/does_not_exist.twpp", GetParam()));
}

} // namespace
