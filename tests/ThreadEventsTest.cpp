//===- tests/ThreadEventsTest.cpp - Concurrent event model tests ----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "races/HappensBefore.h"
#include "trace/ThreadEvents.h"
#include "wpp/Concurrent.h"
#include "wpp/TimestampSet.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

/// A thread trace of Enter(0), \p Blocks block events, Exit.
ThreadTrace simpleThread(ThreadId Id, uint32_t Blocks,
                         uint32_t FunctionCount = 1) {
  ThreadTrace T;
  T.Id = Id;
  T.Trace.FunctionCount = FunctionCount;
  T.Trace.Events.push_back(TraceEvent::enter(0));
  for (uint32_t B = 1; B <= Blocks; ++B)
    T.Trace.Events.push_back(TraceEvent::block(B));
  T.Trace.Events.push_back(TraceEvent::exit());
  return T;
}

ConcurrentTrace twoThreads(uint32_t BlocksEach = 4) {
  ConcurrentTrace Trace;
  Trace.FunctionCount = 1;
  Trace.Threads.push_back(simpleThread(0, BlocksEach));
  Trace.Threads.push_back(simpleThread(1, BlocksEach));
  return Trace;
}

TEST(ThreadEventsTest, WellFormedBasic) {
  ConcurrentTrace Trace = twoThreads();
  EXPECT_TRUE(Trace.isWellFormed());
  EXPECT_EQ(Trace.blockEventCount(), 8u);

  Trace.Syncs.push_back(SyncEvent::acquire(0, 7, 1));
  Trace.Syncs.push_back(SyncEvent::release(0, 7, 3));
  Trace.Syncs.push_back(SyncEvent::acquire(1, 7, 0));
  Trace.Syncs.push_back(SyncEvent::release(1, 7, 4));
  Trace.Accesses.push_back(AccessEvent::write(0, 0x10, 2));
  Trace.Accesses.push_back(AccessEvent::read(1, 0x10, 1));
  EXPECT_TRUE(Trace.isWellFormed());
}

TEST(ThreadEventsTest, WellFormedRejectsBadShapes) {
  {
    ConcurrentTrace Trace = twoThreads();
    Trace.Threads[1].Id = 2; // not dense
    EXPECT_FALSE(Trace.isWellFormed());
  }
  {
    ConcurrentTrace Trace = twoThreads();
    Trace.Syncs.push_back(SyncEvent::acquire(0, 1, 5)); // beyond the clock
    EXPECT_FALSE(Trace.isWellFormed());
  }
  {
    ConcurrentTrace Trace = twoThreads();
    Trace.Syncs.push_back(SyncEvent::acquire(0, 1, 3));
    Trace.Syncs.push_back(SyncEvent::acquire(0, 1, 3)); // re-acquire held
    EXPECT_FALSE(Trace.isWellFormed());
  }
  {
    ConcurrentTrace Trace = twoThreads();
    Trace.Syncs.push_back(SyncEvent::acquire(0, 1, 1));
    Trace.Syncs.push_back(SyncEvent::release(1, 1, 1)); // non-holder
    EXPECT_FALSE(Trace.isWellFormed());
  }
  {
    ConcurrentTrace Trace = twoThreads();
    Trace.Syncs.push_back(SyncEvent::fork(0, 1, 0));
    Trace.Syncs.push_back(SyncEvent::fork(0, 1, 1)); // forked twice
    EXPECT_FALSE(Trace.isWellFormed());
  }
  {
    ConcurrentTrace Trace = twoThreads();
    Trace.Accesses.push_back(AccessEvent::write(1, 0x10, 2));
    Trace.Accesses.push_back(AccessEvent::write(0, 0x10, 2)); // unsorted
    EXPECT_FALSE(Trace.isWellFormed());
  }
  {
    ConcurrentTrace Trace = twoThreads();
    Trace.Accesses.push_back(AccessEvent::write(0, 0x10, 0)); // time 0
    EXPECT_FALSE(Trace.isWellFormed());
  }
}

TEST(ThreadEventsTest, DeriveLockEdges) {
  ConcurrentTrace Trace = twoThreads();
  Trace.Syncs.push_back(SyncEvent::acquire(0, 9, 1));
  Trace.Syncs.push_back(SyncEvent::release(0, 9, 2));
  // Same-thread re-acquire: no edge (program order covers it).
  Trace.Syncs.push_back(SyncEvent::acquire(0, 9, 3));
  Trace.Syncs.push_back(SyncEvent::release(0, 9, 3));
  // Cross-thread handoff: one Lock edge from the latest release.
  Trace.Syncs.push_back(SyncEvent::acquire(1, 9, 2));
  Trace.Syncs.push_back(SyncEvent::release(1, 9, 4));
  ASSERT_TRUE(Trace.isWellFormed());

  std::vector<HbEdge> Edges = deriveHbEdges(Trace);
  ASSERT_EQ(Edges.size(), 1u);
  EXPECT_EQ(Edges[0],
            (HbEdge{HbEdge::Kind::Lock, 0, 3, 1, 2}));
}

TEST(ThreadEventsTest, DeriveForkJoinEdges) {
  ConcurrentTrace Trace = twoThreads(4);
  Trace.Syncs.push_back(SyncEvent::fork(0, 1, 2));
  Trace.Syncs.push_back(SyncEvent::join(0, 1, 3));
  ASSERT_TRUE(Trace.isWellFormed());

  std::vector<HbEdge> Edges = deriveHbEdges(Trace);
  ASSERT_EQ(Edges.size(), 2u);
  EXPECT_EQ(Edges[0], (HbEdge{HbEdge::Kind::Fork, 0, 2, 1, 0}));
  // Join source is the child's final clock (4 blocks).
  EXPECT_EQ(Edges[1], (HbEdge{HbEdge::Kind::Join, 1, 4, 0, 3}));
}

TEST(ThreadEventsTest, VectorClockOps) {
  races::VectorClock A(3), B(3);
  A.raise(0, 5);
  A.raise(2, 1);
  B.raise(1, 7);
  EXPECT_EQ(A[0], 5u);
  EXPECT_EQ(A[1], 0u);
  EXPECT_TRUE(A.dominatedBy(A));
  EXPECT_FALSE(A.dominatedBy(B));
  B.joinWith(A);
  EXPECT_TRUE(A.dominatedBy(B));
  EXPECT_EQ(B[0], 5u);
  EXPECT_EQ(B[1], 7u);
  EXPECT_EQ(B[2], 1u);
}

TEST(ThreadEventsTest, HappensBeforeTimelines) {
  ConcurrencyInfo Conc;
  Conc.FunctionCount = 1;
  Conc.Threads = {{0, 10}, {1, 10}};
  Conc.Accesses.resize(2);
  // T0 releases at 4 -> T1 acquires at 2; T1 releases at 6 -> T0 at 8.
  Conc.Edges.push_back({HbEdge::Kind::Lock, 0, 4, 1, 2});
  Conc.Edges.push_back({HbEdge::Kind::Lock, 1, 6, 0, 8});

  races::HappensBefore Hb = races::buildHappensBefore(Conc);
  EXPECT_TRUE(Hb.OutOfOrderEdges.empty());
  ASSERT_EQ(Hb.Threads.size(), 2u);

  // T1: bottom at 0, then a checkpoint at 2 knowing T0 up to 4.
  ASSERT_EQ(Hb.Threads[1].Checkpoints.size(), 2u);
  EXPECT_EQ(Hb.Threads[1].Checkpoints[1].Time, 2u);
  EXPECT_EQ(Hb.Threads[1].Checkpoints[1].Clock[0], 4u);

  // The clock governs events strictly after the checkpoint time.
  EXPECT_EQ(Hb.Threads[1].clockForEvent(2)[0], 0u);
  EXPECT_EQ(Hb.Threads[1].clockForEvent(3)[0], 4u);

  // T0's checkpoint at 8 knows T1 up to 6, and transitively its own
  // past through the cycle-free chain (component 0 stays its own time).
  ASSERT_EQ(Hb.Threads[0].Checkpoints.size(), 2u);
  EXPECT_EQ(Hb.Threads[0].Checkpoints[1].Time, 8u);
  EXPECT_EQ(Hb.Threads[0].Checkpoints[1].Clock[1], 6u);
  EXPECT_EQ(Hb.Threads[0].clockAfter(8)[1], 6u);
  EXPECT_EQ(Hb.Threads[0].clockAfter(7)[1], 0u);
}

TEST(ThreadEventsTest, OutOfOrderEdgesFlagged) {
  ConcurrencyInfo Conc;
  Conc.FunctionCount = 1;
  Conc.Threads = {{0, 10}, {1, 10}};
  Conc.Accesses.resize(2);
  Conc.Edges.push_back({HbEdge::Kind::Lock, 0, 4, 1, 6});
  Conc.Edges.push_back({HbEdge::Kind::Lock, 0, 8, 1, 3}); // target regressed

  races::HappensBefore Hb = races::buildHappensBefore(Conc);
  ASSERT_EQ(Hb.OutOfOrderEdges.size(), 1u);
  EXPECT_EQ(Hb.OutOfOrderEdges[0], 1u);
}

TEST(ThreadEventsTest, TimestampSetRangeHelpers) {
  // Packs to the run {3, 5, 7, 9} (step 2) plus the singleton {20}.
  TimestampSet Set = TimestampSet::fromSorted({3, 5, 7, 9, 20});
  EXPECT_EQ(Set.countInRange(1, 2), 0u);
  EXPECT_EQ(Set.countInRange(3, 3), 1u);
  EXPECT_EQ(Set.countInRange(4, 8), 2u); // 5, 7
  EXPECT_EQ(Set.countInRange(3, 9), 4u);
  EXPECT_EQ(Set.countInRange(1, 100), 5u);
  EXPECT_EQ(Set.countInRange(10, 19), 0u);
  EXPECT_EQ(Set.firstAtLeast(1), 3u);
  EXPECT_EQ(Set.firstAtLeast(4), 5u);
  EXPECT_EQ(Set.firstAtLeast(9), 9u);
  EXPECT_EQ(Set.firstAtLeast(10), 20u);
  EXPECT_EQ(Set.firstAtLeast(21), 0u);
}

} // namespace
