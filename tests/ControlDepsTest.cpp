//===- tests/ControlDepsTest.cpp - postdominators & control deps -----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "slicing/ControlDeps.h"

#include "dataflow/AnnotatedCfg.h"
#include "slicing/DynamicSlicer.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

/// if (1) { 2 } else { 3 }; 4
SliceProgram diamond() {
  SliceProgram P;
  P.Stmts.resize(4);
  P.Succs = {{2, 3}, {4}, {4}, {}};
  return P;
}

/// 1; while (2) { 3 }; 4
SliceProgram loop() {
  SliceProgram P;
  P.Stmts.resize(4);
  P.Succs = {{2}, {3, 4}, {2}, {}};
  return P;
}

TEST(PostDominatorTest, Diamond) {
  std::vector<BlockId> Ipdom = computePostDominators(diamond());
  EXPECT_EQ(Ipdom[1], 4u);
  EXPECT_EQ(Ipdom[2], 4u);
  EXPECT_EQ(Ipdom[3], 4u);
  EXPECT_EQ(Ipdom[4], 0u); // exits into the virtual exit
}

TEST(PostDominatorTest, Loop) {
  std::vector<BlockId> Ipdom = computePostDominators(loop());
  EXPECT_EQ(Ipdom[1], 2u);
  EXPECT_EQ(Ipdom[2], 4u); // the loop always exits through 4
  EXPECT_EQ(Ipdom[3], 2u); // the body returns to the header
  EXPECT_EQ(Ipdom[4], 0u);
}

TEST(ControlDepsTest, DiamondArmsDependOnPredicate) {
  std::vector<BlockId> Deps = computeControlDeps(diamond());
  EXPECT_EQ(Deps[1], 0u);
  EXPECT_EQ(Deps[2], 1u);
  EXPECT_EQ(Deps[3], 1u);
  EXPECT_EQ(Deps[4], 0u); // the join postdominates the predicate
}

TEST(ControlDepsTest, LoopBodyDependsOnHeader) {
  std::vector<BlockId> Deps = computeControlDeps(loop());
  EXPECT_EQ(Deps[3], 2u);
  EXPECT_EQ(Deps[4], 0u);
  EXPECT_EQ(Deps[2], 0u); // self-dependence of the header is dropped
}

TEST(ControlDepsTest, RecomputesFigure10HandAnnotations) {
  // The hand-assigned control dependences of the paper's example must
  // fall out of the postdominance computation.
  Figure10Program Fig = buildFigure10Program();
  SliceProgram Bare = Fig.Program;
  for (SliceStmt &S : Bare.Stmts) {
    S.ControlDep = 0;
    S.IsPredicate = false;
  }
  annotateControlDeps(Bare);
  for (BlockId Id = 1; Id <= Fig.Program.stmtCount(); ++Id) {
    EXPECT_EQ(Bare.stmt(Id).ControlDep, Fig.Program.stmt(Id).ControlDep)
        << "statement " << Id;
    EXPECT_EQ(Bare.stmt(Id).IsPredicate, Fig.Program.stmt(Id).IsPredicate)
        << "statement " << Id;
  }
}

TEST(ControlDepsTest, SlicesUnchangedUnderRecomputedDeps) {
  Figure10Program Fig = buildFigure10Program();
  SliceProgram Recomputed = Fig.Program;
  annotateControlDeps(Recomputed);
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Fig.Trace);

  EXPECT_EQ(sliceApproach3(Recomputed, Cfg, Fig.Breakpoint, Fig.VarZ, 30)
                .Stmts,
            sliceApproach3(Fig.Program, Cfg, Fig.Breakpoint, Fig.VarZ, 30)
                .Stmts);
  EXPECT_EQ(sliceApproach2(Recomputed, Cfg, Fig.Breakpoint, Fig.VarZ).Stmts,
            sliceApproach2(Fig.Program, Cfg, Fig.Breakpoint, Fig.VarZ)
                .Stmts);
}

TEST(ControlDepsTest, NestedDiamonds) {
  // if (1) { if (2) { 3 } 4 } 5
  SliceProgram P;
  P.Stmts.resize(5);
  P.Succs = {{2, 5}, {3, 4}, {4}, {5}, {}};
  std::vector<BlockId> Deps = computeControlDeps(P);
  EXPECT_EQ(Deps[2], 1u);
  EXPECT_EQ(Deps[3], 2u); // inner statement on the inner predicate
  EXPECT_EQ(Deps[4], 1u); // inner join back on the outer predicate
  EXPECT_EQ(Deps[5], 0u);
}

} // namespace
