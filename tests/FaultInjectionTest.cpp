//===- tests/FaultInjectionTest.cpp - fault seam + durable IO -------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-injection seam (support/FaultInjection.h) and the failure
/// paths it exists to exercise: typed IO errors, atomic-write retries
/// and rollback, journal degradation, and the salvage tool's allocation
/// hardening. Every test installs its own spec via ScopedFaultSpec, so
/// the suite is deterministic even under a CI-wide TWPP_FAULT sweep.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "verify/Checks.h"
#include "verify/Recover.h"
#include "wpp/Archive.h"
#include "wpp/Streaming.h"

#include "TestTraces.h"

#include <cstdio>
#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace twpp;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

TEST(FaultSpec, ParsesValidSpecs) {
  std::vector<fault::FaultRule> Rules;
  std::string Error;
  ASSERT_TRUE(fault::parseFaultSpec("io:write:p=0.25", Rules, Error))
      << Error;
  ASSERT_EQ(Rules.size(), 1u);
  EXPECT_EQ(Rules[0].RuleKind, fault::FaultRule::Kind::Io);
  EXPECT_EQ(Rules[0].Op, "write");
  EXPECT_DOUBLE_EQ(Rules[0].P, 0.25);

  Rules.clear();
  ASSERT_TRUE(fault::parseFaultSpec(
      "io:write:p=0.01,alloc:n=500,io:rename:every=3:seed=9", Rules, Error))
      << Error;
  ASSERT_EQ(Rules.size(), 3u);
  EXPECT_EQ(Rules[1].RuleKind, fault::FaultRule::Kind::Alloc);
  EXPECT_EQ(Rules[1].Nth, 500u);
  EXPECT_EQ(Rules[2].Op, "rename");
  EXPECT_EQ(Rules[2].Every, 3u);
  EXPECT_EQ(Rules[2].Seed, 9u);

  Rules.clear();
  ASSERT_TRUE(fault::parseFaultSpec("io:*:n=1", Rules, Error)) << Error;
  EXPECT_EQ(Rules[0].Op, "*");

  // Empty spec: valid, no rules (injection off).
  Rules.clear();
  EXPECT_TRUE(fault::parseFaultSpec("", Rules, Error));
  EXPECT_TRUE(Rules.empty());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  std::vector<fault::FaultRule> Rules;
  std::string Error;
  for (const char *Bad :
       {"bogus", "io:frobnicate", "io:write:p=banana", "io:write:p=2",
        "alloc:write", "io:n=", "io:write:wat=1", ",", "io:write:n=0"}) {
    Rules.clear();
    Error.clear();
    EXPECT_FALSE(fault::parseFaultSpec(Bad, Rules, Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
  // A bad spec must not replace the active one.
  fault::ScopedFaultSpec Active("io:write:n=1000000");
  EXPECT_FALSE(fault::setFaultSpec("nonsense"));
  EXPECT_EQ(fault::activeFaultSpec(), "io:write:n=1000000");
}

TEST(FaultSpec, ParsesWireRules) {
  std::vector<fault::FaultRule> Rules;
  std::string Error;
  ASSERT_TRUE(fault::parseFaultSpec("wire:corrupt:every=7", Rules, Error))
      << Error;
  ASSERT_EQ(Rules.size(), 1u);
  EXPECT_EQ(Rules[0].RuleKind, fault::FaultRule::Kind::Wire);
  EXPECT_EQ(Rules[0].Op, "corrupt");
  EXPECT_EQ(Rules[0].Every, 7u);

  Rules.clear();
  ASSERT_TRUE(fault::parseFaultSpec("wire:*:p=0.5:seed=3", Rules, Error))
      << Error;
  EXPECT_EQ(Rules[0].Op, "*");
  EXPECT_DOUBLE_EQ(Rules[0].P, 0.5);
  EXPECT_EQ(Rules[0].Seed, 3u);

  // Wire and io rules mix in one spec (the CI chaos sweep does this).
  Rules.clear();
  ASSERT_TRUE(fault::parseFaultSpec(
      "wire:truncate:n=4,io:journal:p=0.01,wire:stall:every=11", Rules,
      Error))
      << Error;
  ASSERT_EQ(Rules.size(), 3u);
  EXPECT_EQ(Rules[0].RuleKind, fault::FaultRule::Kind::Wire);
  EXPECT_EQ(Rules[1].RuleKind, fault::FaultRule::Kind::Io);
  EXPECT_EQ(Rules[2].Op, "stall");
}

TEST(FaultSpec, RejectsBadWireRules) {
  std::vector<fault::FaultRule> Rules;
  std::string Error;
  for (const char *Bad : {
           "wire:frobnicate:n=1", // unknown wire op
           "wire:corrupt",        // no trigger
           "io:corrupt:n=1",      // corrupt is a wire op, not io
           "wire:write:n=1",      // write is an io op, not wire
       }) {
    Rules.clear();
    Error.clear();
    EXPECT_FALSE(fault::parseFaultSpec(Bad, Rules, Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
}

TEST(FaultSeam, WireOpMatchingIsExactAndClassIsolated) {
  fault::ScopedFaultSpec Spec("wire:corrupt:every=2");
  int CorruptFires = 0, TruncateFires = 0;
  for (int I = 0; I < 10; ++I) {
    if (fault::shouldFaultWire("corrupt"))
      ++CorruptFires;
    if (fault::shouldFaultWire("truncate"))
      ++TruncateFires;
  }
  EXPECT_EQ(CorruptFires, 5); // every 2nd of 10 matching hits
  EXPECT_EQ(TruncateFires, 0);
  // A wire rule never leaks into the io seam.
  std::string Path = tempPath("wire_isolated.bin");
  EXPECT_TRUE(writeFileBytes(Path, {1, 2, 3}).ok());
  std::remove(Path.c_str());
}

TEST(FaultSeam, WireStarMatchesEveryOp) {
  fault::ScopedFaultSpec Spec("wire:*:n=3");
  EXPECT_FALSE(fault::shouldFaultWire("corrupt"));
  EXPECT_FALSE(fault::shouldFaultWire("duplicate"));
  EXPECT_TRUE(fault::shouldFaultWire("stall")); // 3rd hit, any op
  EXPECT_FALSE(fault::shouldFaultWire("stall")); // n= is one-shot
}

TEST(FaultSeam, NthFaultFiresOnceAndNamesInjection) {
  fault::ScopedFaultSpec Spec("io:write:n=1");
  std::string Path = tempPath("nth_write.bin");
  uint64_t Before = fault::injectedFaultCount();
  IoError First = writeFileBytes(Path, {1, 2, 3});
  EXPECT_FALSE(First.ok());
  EXPECT_EQ(First.Status, IoStatus::WriteFailed);
  EXPECT_EQ(First.Errno, 0); // injected, not a real syscall failure
  EXPECT_NE(First.message().find("[injected]"), std::string::npos);
  EXPECT_GT(fault::injectedFaultCount(), Before);
  // One-shot: the second write goes through.
  IoError Second = writeFileBytes(Path, {1, 2, 3});
  EXPECT_TRUE(Second.ok()) << Second.message();
  std::remove(Path.c_str());
}

TEST(FaultSeam, SuspendShieldsCurrentThread) {
  fault::ScopedFaultSpec Spec("io:write:every=1");
  std::string Path = tempPath("suspended.bin");
  EXPECT_FALSE(writeFileBytes(Path, {1}).ok());
  {
    fault::ScopedFaultSuspend Shield;
    EXPECT_TRUE(writeFileBytes(Path, {1}).ok());
    {
      fault::ScopedFaultSuspend Nested; // nestable
      EXPECT_TRUE(writeFileBytes(Path, {2}).ok());
    }
    EXPECT_TRUE(writeFileBytes(Path, {3}).ok());
  }
  EXPECT_FALSE(writeFileBytes(Path, {4}).ok());
  std::remove(Path.c_str());
}

TEST(FaultSeam, AtomicWriteRetriesPastTransientFault) {
  // Exactly one injected rename failure: the retry loop must absorb it.
  fault::ScopedFaultSpec Spec("io:rename:n=1");
  std::string Path = tempPath("atomic_retry.bin");
  IoError Result = writeFileBytesAtomic(Path, {7, 7, 7});
  EXPECT_TRUE(Result.ok()) << Result.message();
  std::vector<uint8_t> Back;
  {
    fault::ScopedFaultSuspend Shield;
    ASSERT_TRUE(readFileBytes(Path, Back).ok());
  }
  EXPECT_EQ(Back, (std::vector<uint8_t>{7, 7, 7}));
  std::remove(Path.c_str());
}

TEST(FaultSeam, AtomicWriteFailureKeepsOldContentAndCleansTemp) {
  std::string Path = tempPath("atomic_rollback.bin");
  {
    fault::ScopedFaultSuspend Shield;
    ASSERT_TRUE(writeFileBytes(Path, {1, 2, 3}).ok());
  }
  {
    // Every write attempt fails: the atomic write must give up after its
    // bounded retries, leave the target untouched, and remove the temp.
    fault::ScopedFaultSpec Spec("io:write:every=1");
    IoError Result = writeFileBytesAtomic(Path, {9, 9, 9});
    EXPECT_FALSE(Result.ok());
  }
  fault::ScopedFaultSuspend Shield;
  std::vector<uint8_t> Back;
  ASSERT_TRUE(readFileBytes(Path, Back).ok());
  EXPECT_EQ(Back, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_FALSE(fileSize(Path + ".tmp").has_value())
      << "temp file left behind";
  std::remove(Path.c_str());
}

TEST(FaultSeam, ShortReadAndStatFaultsAreTyped) {
  std::string Path = tempPath("typed_reads.bin");
  {
    fault::ScopedFaultSuspend Shield;
    ASSERT_TRUE(writeFileBytes(Path, {1, 2, 3, 4}).ok());
  }
  {
    fault::ScopedFaultSpec Spec("io:read:every=1");
    std::vector<uint8_t> Bytes;
    IoError Result = readFileBytes(Path, Bytes);
    EXPECT_FALSE(Result.ok());
    EXPECT_TRUE(Bytes.empty()) << "failed read must not leak partial data";
  }
  {
    fault::ScopedFaultSpec Spec("io:stat:every=1");
    EXPECT_FALSE(fileSize(Path).has_value());
  }
  // A slice past EOF is a typed short read even with no faults at all.
  {
    fault::ScopedFaultSpec Off("");
    std::vector<uint8_t> Bytes;
    IoError Result = readFileSlice(Path, 2, 10, Bytes);
    EXPECT_EQ(Result.Status, IoStatus::ShortRead);
  }
  std::remove(Path.c_str());
}

TEST(FaultSeam, JournalFaultsDegradeStreamingNotAbort) {
  RawTrace Trace = fixtures::randomTrace(64, 4, 200);
  std::string Path = tempPath("faulty_journal.twppj");
  fault::ScopedFaultSpec Spec("io:journal:every=2");
  StreamingConfig Config;
  Config.JournalPath = Path;
  Config.CheckpointInterval = 4;
  StreamingCompactor Sink(Trace.FunctionCount, Config);
  for (const TraceEvent &Event : Trace.Events) {
    switch (Event.EventKind) {
    case TraceEvent::Kind::Enter:
      Sink.onEnter(Event.Id);
      break;
    case TraceEvent::Kind::Block:
      Sink.onBlock(Event.Id);
      break;
    case TraceEvent::Kind::Exit:
      Sink.onExit();
      break;
    }
  }
  // Some journal operations failed; the compactor carried on and its
  // output is unaffected.
  EXPECT_FALSE(Sink.lastJournalError().ok());
  while (!Sink.balanced())
    Sink.onExit();
  std::vector<uint8_t> Faulty = encodeArchive(Sink.takeCompacted());
  {
    fault::ScopedFaultSpec Off("");
    StreamingCompactor Clean(Trace.FunctionCount);
    for (const TraceEvent &Event : Trace.Events) {
      switch (Event.EventKind) {
      case TraceEvent::Kind::Enter:
        Clean.onEnter(Event.Id);
        break;
      case TraceEvent::Kind::Block:
        Clean.onBlock(Event.Id);
        break;
      case TraceEvent::Kind::Exit:
        Clean.onExit();
        break;
      }
    }
    while (!Clean.balanced())
      Clean.onExit();
    EXPECT_EQ(Faulty, encodeArchive(Clean.takeCompacted()));
  }
  std::remove(Path.c_str());
}

TEST(FaultSeam, AllocFaultSurfacesAsRecoverDiagnostic) {
  RawTrace Trace = fixtures::randomTrace(2024, 6, 3000);
  std::vector<uint8_t> Bytes = encodeArchive(compactWpp(Trace));
  {
    fault::ScopedFaultSpec Spec("alloc:n=1");
    std::vector<uint8_t> Out;
    recover::SalvageReport Report;
    EXPECT_FALSE(recover::salvageArchive(Bytes, Out, Report));
    bool SawAlloc = false;
    for (const verify::Diagnostic &D : Report.Diagnostics)
      if (D.CheckId == verify::checks::RecoverAlloc)
        SawAlloc = true;
    EXPECT_TRUE(SawAlloc) << recover::renderSalvageReportText(Report);
    EXPECT_TRUE(Out.empty());
  }
  // With the fault gone the same bytes salvage losslessly.
  fault::ScopedFaultSpec Off("");
  std::vector<uint8_t> Out;
  recover::SalvageReport Report;
  EXPECT_TRUE(recover::salvageArchive(Bytes, Out, Report));
  EXPECT_EQ(Out, Bytes);
}

TEST(FaultSeam, ProbabilisticRuleIsDeterministicPerSeed) {
  // p-rules draw from a deterministic PRNG: the same seed must produce
  // the same fail/pass pattern across runs.
  auto Pattern = [](uint64_t Seed) {
    fault::ScopedFaultSpec Spec("io:write:p=0.5:seed=" +
                                std::to_string(Seed));
    std::string Path = tempPath("prob.bin");
    std::vector<bool> Fails;
    for (int I = 0; I < 32; ++I)
      Fails.push_back(!writeFileBytes(Path, {1}).ok());
    std::remove(Path.c_str());
    return Fails;
  };
  EXPECT_EQ(Pattern(7), Pattern(7));
  std::vector<bool> A = Pattern(7);
  size_t Failures = 0;
  for (bool F : A)
    Failures += F;
  EXPECT_GT(Failures, 0u);
  EXPECT_LT(Failures, A.size());
}

} // namespace
