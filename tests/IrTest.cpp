//===- tests/IrTest.cpp - mini IR structure & helpers ----------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"
#include "ir/IrBuilder.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

TEST(ModuleTest, InternVarDeduplicates) {
  Module M;
  VarId A = M.internVar("x");
  VarId B = M.internVar("y");
  VarId C = M.internVar("x");
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(M.varName(A), "x");
  EXPECT_EQ(M.varName(12345), "v12345");
}

TEST(BuilderTest, BuildsVerifiableFunction) {
  Module M;
  FunctionBuilder B(M, "abs");
  VarId X = B.param("x");
  BlockId Entry = B.newBlock();
  BlockId Then = B.newBlock();
  BlockId Join = B.newBlock();
  uint32_t Cond = B.binary(ExprKind::Lt, B.varRef(X), B.constant(0));
  B.branch(Entry, Cond, Then, Join);
  B.assign(Then, X, B.unary(ExprKind::Neg, B.varRef(X)));
  B.jump(Then, Join);
  B.retValue(Join, B.varRef(X));
  M.MainId = 0;
  EXPECT_TRUE(verifyModule(M));
  EXPECT_EQ(M.findFunction("abs"), &M.Functions[0]);
  EXPECT_EQ(M.findFunction("nope"), nullptr);
}

TEST(BuilderTest, SuccessorsReflectTerminators) {
  Module M;
  FunctionBuilder B(M, "f");
  BlockId B1 = B.newBlock();
  BlockId B2 = B.newBlock();
  BlockId B3 = B.newBlock();
  uint32_t Cond = B.constant(1);
  B.branch(B1, Cond, B2, B3);
  B.jump(B2, B3);
  B.ret(B3);
  const Function &F = M.Functions[0];
  EXPECT_EQ(F.block(B1).successors(), (std::vector<BlockId>{B2, B3}));
  EXPECT_EQ(F.block(B2).successors(), (std::vector<BlockId>{B3}));
  EXPECT_TRUE(F.block(B3).successors().empty());
  // A branch with identical arms reports one successor.
  Module M2;
  FunctionBuilder B2b(M2, "g");
  BlockId C1 = B2b.newBlock();
  BlockId C2 = B2b.newBlock();
  B2b.branch(C1, B2b.constant(0), C2, C2);
  B2b.ret(C2);
  EXPECT_EQ(M2.Functions[0].block(C1).successors(),
            (std::vector<BlockId>{C2}));
}

TEST(StmtUsesTest, CollectsAndDeduplicates) {
  Module M;
  FunctionBuilder B(M, "f");
  VarId X = B.var("x");
  VarId Y = B.var("y");
  BlockId B1 = B.newBlock();
  // x = x + (y * x): uses {x, y} once each.
  uint32_t E = B.binary(ExprKind::Add, B.varRef(X),
                        B.binary(ExprKind::Mul, B.varRef(Y), B.varRef(X)));
  B.assign(B1, X, E);
  B.ret(B1);
  const Function &F = M.Functions[0];
  EXPECT_EQ(stmtUses(F, F.block(B1).Stmts[0]),
            (std::vector<VarId>{X, Y}));
}

TEST(StmtUsesTest, CallArgumentsCounted) {
  Module M;
  FunctionBuilder Callee(M, "g");
  BlockId G1 = Callee.newBlock();
  Callee.ret(G1);
  FunctionBuilder B(M, "f");
  VarId X = B.var("x");
  BlockId B1 = B.newBlock();
  B.call(B1, Callee.id(), {B.varRef(X)}, B.var("r"));
  B.ret(B1);
  const Function &F = M.Functions[1];
  EXPECT_EQ(stmtUses(F, F.block(B1).Stmts[0]), (std::vector<VarId>{X}));
}

TEST(CfgStatsTest, CountsMatch) {
  Module M;
  FunctionBuilder B(M, "f");
  BlockId B1 = B.newBlock();
  BlockId B2 = B.newBlock();
  BlockId B3 = B.newBlock();
  B.branch(B1, B.constant(1), B2, B3);
  B.jump(B2, B1);
  B.ret(B3);
  CfgStats Stats = staticCfgStats(M.Functions[0]);
  EXPECT_EQ(Stats.Nodes, 3u);
  EXPECT_EQ(Stats.Edges, 3u);
}

TEST(VerifyTest, CatchesBrokenModules) {
  // Successor out of range.
  Module M;
  FunctionBuilder B(M, "f");
  BlockId B1 = B.newBlock();
  B.jump(B1, 9);
  M.MainId = 0;
  EXPECT_FALSE(verifyModule(M));

  // MainId out of range.
  Module M2;
  FunctionBuilder B2(M2, "f");
  BlockId C1 = B2.newBlock();
  B2.ret(C1);
  M2.MainId = 5;
  EXPECT_FALSE(verifyModule(M2));

  // Call to unknown function.
  Module M3;
  FunctionBuilder B3(M3, "f");
  BlockId D1 = B3.newBlock();
  B3.call(D1, 7, {});
  B3.ret(D1);
  M3.MainId = 0;
  EXPECT_FALSE(verifyModule(M3));
}

} // namespace
