//===- tests/ConcurrentWorkloadTest.cpp - Concurrent workload tests -------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "races/RaceDetect.h"
#include "workloads/Concurrent.h"
#include "wpp/Concurrent.h"

#include <gtest/gtest.h>

using namespace twpp;
using namespace twpp::races;

namespace {

TEST(ConcurrentWorkloadTest, ProfilesAreWellFormed) {
  for (const ConcurrentProfile &P : testConcurrentProfiles()) {
    ConcurrentTrace Trace = generateConcurrentTrace(P);
    EXPECT_TRUE(Trace.isWellFormed()) << P.Name;
    EXPECT_EQ(Trace.Threads.size(), P.Threads) << P.Name;
    EXPECT_FALSE(Trace.Accesses.empty()) << P.Name;
  }
}

TEST(ConcurrentWorkloadTest, GenerationIsDeterministic) {
  for (const ConcurrentProfile &P : testConcurrentProfiles())
    EXPECT_EQ(generateConcurrentTrace(P), generateConcurrentTrace(P))
        << P.Name;
}

TEST(ConcurrentWorkloadTest, RaceVerdictsMatchProfileIntent) {
  for (const ConcurrentProfile &P : testConcurrentProfiles()) {
    ConcurrentWpp Wpp = compactConcurrentWpp(generateConcurrentTrace(P));
    RaceReport Compacted = detectRacesCompacted(Wpp.Conc);
    RaceReport Oracle = detectRacesOracle(Wpp.Conc);
    EXPECT_TRUE(sameVerdict(Compacted, Oracle)) << P.Name;
    EXPECT_EQ(Compacted.racy(), P.InjectRaces)
        << P.Name << "\n"
        << renderRaceLines(Compacted);
  }
}

TEST(ConcurrentWorkloadTest, CompactionIsJobCountInvariant) {
  for (const ConcurrentProfile &P : testConcurrentProfiles()) {
    ConcurrentTrace Trace = generateConcurrentTrace(P);
    ConcurrentWpp Jobs1 =
        compactConcurrentWpp(Trace, ParallelConfig::withJobs(1));
    ConcurrentWpp Jobs8 =
        compactConcurrentWpp(Trace, ParallelConfig::withJobs(8));
    EXPECT_EQ(Jobs1.Conc, Jobs8.Conc) << P.Name;
    ASSERT_EQ(Jobs1.Body.Functions.size(), Jobs8.Body.Functions.size())
        << P.Name;
    for (uint32_t T = 0; T != P.Threads; ++T)
      EXPECT_EQ(reconstructThreadTrace(Jobs1, T),
                reconstructThreadTrace(Jobs8, T))
          << P.Name << " thread " << T;
  }
}

TEST(ConcurrentWorkloadTest, CompactionRoundTripsEveryThread) {
  for (const ConcurrentProfile &P : testConcurrentProfiles()) {
    ConcurrentTrace Trace = generateConcurrentTrace(P);
    ConcurrentWpp Wpp = compactConcurrentWpp(Trace);
    for (uint32_t T = 0; T != P.Threads; ++T)
      EXPECT_EQ(reconstructThreadTrace(Wpp, T), Trace.Threads[T].Trace)
          << P.Name << " thread " << T;
  }
}

} // namespace
