//===- tests/IrFactsTest.cpp - IR-derived GEN/KILL facts -------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "dataflow/IrFacts.h"

#include "dataflow/AnnotatedCfg.h"
#include "lang/Lower.h"
#include "runtime/Interpreter.h"
#include "trace/UncompactedFile.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

TEST(IrFactsTest, ClassifiesReadsAndWrites) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() {"
                             "  v = 1;"              // write -> kill
                             "  while (v < 10) {"    // header reads v
                             "    s = s + v;"        // read -> gen
                             "    v = v + 1;"        // read+write -> kill
                             "  }"
                             "  print s;"
                             "}",
                             M, Error))
      << Error;
  const Function &Main = M.Functions[M.MainId];
  VarId V = M.internVar("v");
  BlockFactSpec Spec = availabilityFact(Main, V);

  // entry(write v)=1, header(reads v in cond)=2, body(read+write)=3,
  // exit=4.
  EXPECT_EQ(Spec.KillBlocks, (std::vector<BlockId>{1, 3}));
  EXPECT_EQ(Spec.GenBlocks, (std::vector<BlockId>{2}));
  EXPECT_EQ(Spec.effectOf(1), BlockEffect::Kill);
  EXPECT_EQ(Spec.effectOf(2), BlockEffect::Gen);
  EXPECT_EQ(Spec.effectOf(4), BlockEffect::Transparent);
}

TEST(IrFactsTest, TerminatorReturnCountsAsRead) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn f(a) { return a; } "
                             "fn main() { x = call f(3); print x; }",
                             M, Error))
      << Error;
  const Function *F = M.findFunction("f");
  BlockFactSpec Spec = availabilityFact(*F, M.internVar("a"));
  EXPECT_EQ(Spec.GenBlocks, (std::vector<BlockId>{1}));
  EXPECT_TRUE(Spec.KillBlocks.empty());
}

TEST(IrFactsTest, DefinedFactOnlyGens) {
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn main() { read x; print x; x = 2; }",
                             M, Error))
      << Error;
  BlockFactSpec Spec =
      definedFact(M.Functions[M.MainId], M.internVar("x"));
  EXPECT_EQ(Spec.GenBlocks, (std::vector<BlockId>{1}));
  EXPECT_TRUE(Spec.KillBlocks.empty());
}

TEST(IrFactsTest, EndToEndRedundancyQuery) {
  // The optimizer_demo scenario in miniature: v read every iteration,
  // killed every 3rd; the second read is redundant when not killed since
  // the first read of the same iteration.
  Module M;
  std::string Error;
  ASSERT_TRUE(compileProgram("fn kernel(n) {"
                             "  v = 7; i = 0; s = 0;"
                             "  while (i < n) {"
                             "    s = s + v;"
                             "    if (i % 3 == 2) { v = v + 1; }"
                             "    else { s = s - v; }"
                             "    i = i + 1;"
                             "  }"
                             "  return s;"
                             "}"
                             "fn main() { r = call kernel(30); print r; }",
                             M, Error))
      << Error;
  const Function *Kernel = M.findFunction("kernel");
  BlockFactSpec Spec = availabilityFact(*Kernel, M.internVar("v"));

  ExecutionResult Result;
  RawTrace Trace = traceExecution(M, {}, Result);
  ASSERT_TRUE(Result.Completed);

  std::vector<std::vector<BlockId>> Traces;
  extractFunctionTraces(Trace, Kernel->Id, Traces);
  ASSERT_EQ(Traces.size(), 1u);
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Traces[0]);

  // Query at the else-arm block (the second read). It is always preceded
  // in the same iteration by "s = s + v" (a gen), so redundancy is 100%.
  BlockId ElseArm = Spec.GenBlocks.back();
  FactFrequency Freq = factFrequency(Cfg, ElseArm, Spec.asEffectFn());
  EXPECT_EQ(Freq.Total, 20u); // 2 of every 3 iterations
  EXPECT_EQ(Freq.Holds, Freq.Total);
}

} // namespace
