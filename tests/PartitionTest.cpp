//===- tests/PartitionTest.cpp - partitioning + redundancy removal ---------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Partition.h"

#include "TestTraces.h"
#include "wpp/DynamicCallGraph.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

TEST(PartitionTest, PaperFigure3UniqueTraces) {
  // Five calls to f produce only two unique path traces (Figure 3).
  RawTrace Trace = fixtures::figure1Trace();
  PartitionedWpp Wpp = partitionWpp(Trace);

  ASSERT_EQ(Wpp.Functions.size(), 2u);
  const FunctionTraceTable &Main = Wpp.Functions[0];
  const FunctionTraceTable &F = Wpp.Functions[1];

  EXPECT_EQ(Main.CallCount, 1u);
  EXPECT_EQ(Main.UniqueTraces.size(), 1u);
  EXPECT_EQ(F.CallCount, 5u);
  EXPECT_EQ(F.UniqueTraces.size(), 2u);
  EXPECT_EQ(F.UseCounts[0], 3u); // path2 used by calls 1, 2, 4
  EXPECT_EQ(F.UseCounts[1], 2u); // path1 used by calls 3, 5
  EXPECT_EQ(F.TotalBlockEvents, 5u * 17u);
}

TEST(PartitionTest, DcgShape) {
  RawTrace Trace = fixtures::figure1Trace();
  PartitionedWpp Wpp = partitionWpp(Trace);

  ASSERT_EQ(Wpp.Dcg.Roots.size(), 1u);
  const DcgNode &Root = Wpp.Dcg.Nodes[Wpp.Dcg.Roots[0]];
  EXPECT_EQ(Root.Function, 0u);
  ASSERT_EQ(Root.Children.size(), 5u);
  // Calls to f happen while main executes its 3rd, 6th, ... block events.
  EXPECT_EQ(Root.Anchors,
            (std::vector<uint32_t>{3, 6, 9, 12, 15}));
  for (uint32_t Child : Root.Children)
    EXPECT_EQ(Wpp.Dcg.Nodes[Child].Function, 1u);
  EXPECT_EQ(Wpp.Dcg.callCountOf(1), 5u);
}

TEST(PartitionTest, ReconstructionIsExact) {
  RawTrace Trace = fixtures::figure1Trace();
  EXPECT_EQ(reconstructRawTrace(partitionWpp(Trace)), Trace);
}

TEST(PartitionTest, EmptyTrace) {
  RawTrace Trace;
  Trace.FunctionCount = 3;
  PartitionedWpp Wpp = partitionWpp(Trace);
  EXPECT_TRUE(Wpp.Dcg.Nodes.empty());
  EXPECT_EQ(reconstructRawTrace(Wpp), Trace);
}

TEST(PartitionTest, CallBeforeAnyBlock) {
  // f called before main executes any block: anchor 0.
  RawTrace Trace;
  Trace.FunctionCount = 2;
  Trace.Events = {TraceEvent::enter(0), TraceEvent::enter(1),
                  TraceEvent::block(1), TraceEvent::exit(),
                  TraceEvent::block(1), TraceEvent::exit()};
  PartitionedWpp Wpp = partitionWpp(Trace);
  const DcgNode &Root = Wpp.Dcg.Nodes[Wpp.Dcg.Roots[0]];
  ASSERT_EQ(Root.Anchors.size(), 1u);
  EXPECT_EQ(Root.Anchors[0], 0u);
  EXPECT_EQ(reconstructRawTrace(Wpp), Trace);
}

TEST(PartitionTest, EmptyPathTraceCall) {
  // A call that runs no blocks at all still round-trips.
  RawTrace Trace;
  Trace.FunctionCount = 2;
  Trace.Events = {TraceEvent::enter(0), TraceEvent::enter(1),
                  TraceEvent::exit(), TraceEvent::exit()};
  PartitionedWpp Wpp = partitionWpp(Trace);
  EXPECT_EQ(Wpp.Functions[1].UniqueTraces.size(), 1u);
  EXPECT_TRUE(Wpp.Functions[1].UniqueTraces[0].empty());
  EXPECT_EQ(reconstructRawTrace(Wpp), Trace);
}

TEST(DcgCodecTest, EncodeDecodeRoundTrip) {
  RawTrace Trace = fixtures::randomTrace(77);
  PartitionedWpp Wpp = partitionWpp(Trace);
  DynamicCallGraph Back;
  ASSERT_TRUE(decodeDcg(encodeDcg(Wpp.Dcg), Back));
  EXPECT_EQ(Back, Wpp.Dcg);
}

TEST(DcgCodecTest, RejectsTruncated) {
  RawTrace Trace = fixtures::randomTrace(78);
  std::vector<uint8_t> Bytes = encodeDcg(partitionWpp(Trace).Dcg);
  Bytes.resize(Bytes.size() / 2);
  DynamicCallGraph Back;
  EXPECT_FALSE(decodeDcg(Bytes, Back));
}

/// Property sweep: partition/reconstruct is the identity on random traces.
class PartitionRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionRoundTrip, RandomTraces) {
  RawTrace Trace = fixtures::randomTrace(GetParam());
  ASSERT_TRUE(Trace.isWellFormed());
  PartitionedWpp Wpp = partitionWpp(Trace);
  EXPECT_EQ(reconstructRawTrace(Wpp), Trace);

  // Use counts are consistent with call counts.
  for (const FunctionTraceTable &Table : Wpp.Functions) {
    uint64_t Sum = 0;
    for (uint64_t Count : Table.UseCounts)
      Sum += Count;
    EXPECT_EQ(Sum, Table.CallCount);
    EXPECT_EQ(Table.UseCounts.size(), Table.UniqueTraces.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

} // namespace
