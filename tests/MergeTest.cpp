//===- tests/MergeTest.cpp - multi-run WPP aggregation ---------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "wpp/Merge.h"

#include "TestTraces.h"

#include <gtest/gtest.h>

using namespace twpp;

namespace {

/// Concatenating two runs' event streams gives the same WPP as merging
/// their partitioned forms (the oracle for all merge behaviour).
RawTrace concatenated(const RawTrace &A, const RawTrace &B) {
  RawTrace Out = A;
  Out.Events.insert(Out.Events.end(), B.Events.begin(), B.Events.end());
  return Out;
}

TEST(MergeTest, TwoRunsMatchConcatenatedStream) {
  RawTrace RunA = fixtures::figure1Trace();
  RawTrace RunB = fixtures::randomTrace(5, 2, 800);
  PartitionedWpp A = partitionWpp(RunA);
  PartitionedWpp B = partitionWpp(RunB);

  PartitionedWpp Merged = mergePartitionedWpps({&A, &B});
  PartitionedWpp Oracle = partitionWpp(concatenated(RunA, RunB));
  EXPECT_EQ(Merged, Oracle);
  EXPECT_EQ(reconstructRawTrace(Merged), concatenated(RunA, RunB));
}

TEST(MergeTest, CrossRunRedundancyEliminated) {
  // The same execution twice: unique traces must not duplicate, while
  // use/call counts double.
  RawTrace Run = fixtures::figure1Trace();
  PartitionedWpp Once = partitionWpp(Run);
  PartitionedWpp Merged = mergePartitionedWpps({&Once, &Once});

  for (size_t F = 0; F < Once.Functions.size(); ++F) {
    EXPECT_EQ(Merged.Functions[F].UniqueTraces,
              Once.Functions[F].UniqueTraces);
    EXPECT_EQ(Merged.Functions[F].CallCount,
              2 * Once.Functions[F].CallCount);
    for (size_t T = 0; T < Once.Functions[F].UseCounts.size(); ++T)
      EXPECT_EQ(Merged.Functions[F].UseCounts[T],
                2 * Once.Functions[F].UseCounts[T]);
  }
  EXPECT_EQ(Merged.Dcg.Roots.size(), 2u);
}

TEST(MergeTest, EmptyAndSingleInputs) {
  EXPECT_EQ(mergePartitionedWpps({}), PartitionedWpp());
  RawTrace Run = fixtures::randomTrace(9, 3, 500);
  PartitionedWpp Once = partitionWpp(Run);
  PartitionedWpp Merged = mergePartitionedWpps({&Once});
  EXPECT_EQ(Merged, Once);
}

TEST(MergeTest, CompactedMergeRoundTrips) {
  RawTrace RunA = fixtures::randomTrace(11, 4, 900);
  RawTrace RunB = fixtures::randomTrace(12, 4, 900);
  TwppWpp A = compactWpp(RunA);
  TwppWpp B = compactWpp(RunB);
  TwppWpp Merged = mergeCompactedWpps({&A, &B});
  EXPECT_EQ(Merged, compactWpp(concatenated(RunA, RunB)));
  EXPECT_EQ(reconstructRawTrace(Merged), concatenated(RunA, RunB));
}

/// Property: merging k random runs equals compacting the concatenation.
class MergeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeProperty, ManyRuns) {
  Rng R(GetParam());
  std::vector<RawTrace> Runs;
  RawTrace All;
  All.FunctionCount = 5;
  size_t Count = 2 + R.nextBelow(4);
  for (size_t I = 0; I < Count; ++I) {
    Runs.push_back(fixtures::randomTrace(GetParam() * 10 + I, 5, 600));
    All.Events.insert(All.Events.end(), Runs.back().Events.begin(),
                      Runs.back().Events.end());
  }
  std::vector<PartitionedWpp> Parts;
  for (const RawTrace &Run : Runs)
    Parts.push_back(partitionWpp(Run));
  std::vector<const PartitionedWpp *> Pointers;
  for (const PartitionedWpp &P : Parts)
    Pointers.push_back(&P);
  EXPECT_EQ(mergePartitionedWpps(Pointers), partitionWpp(All));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeProperty,
                         ::testing::Values(91, 92, 93, 94, 95, 96));

} // namespace
