//===- tests/ConcurrentArchiveTest.cpp - Thread-aware archive tests -------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//

#include "support/ByteStream.h"
#include "support/FileIO.h"
#include "verify/ArchiveChecks.h"
#include "verify/Diagnostics.h"
#include "wpp/Archive.h"
#include "wpp/Concurrent.h"
#include "workloads/Concurrent.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

using namespace twpp;

namespace {

std::string tempPath(const std::string &Name) {
  return (std::filesystem::temp_directory_path() / Name).string();
}

ConcurrentWpp buildSmall() {
  ConcurrentProfile P = testConcurrentProfiles()[0]; // contended
  return compactConcurrentWpp(generateConcurrentTrace(P));
}

size_t countCheck(const verify::DiagnosticEngine &Engine,
                  std::string_view Id) {
  size_t N = 0;
  for (const verify::Diagnostic &D : Engine.diagnostics())
    N += D.CheckId == Id;
  return N;
}

TEST(ConcurrentArchiveTest, RoundTrip) {
  ConcurrentProfile P = testConcurrentProfiles()[0];
  ConcurrentTrace Trace = generateConcurrentTrace(P);
  ConcurrentWpp Wpp = compactConcurrentWpp(Trace);

  std::string Path = tempPath("conc_roundtrip.twpp");
  ASSERT_TRUE(writeConcurrentArchiveFile(Path, Wpp));

  ArchiveReader Reader;
  ASSERT_TRUE(Reader.open(Path));
  EXPECT_EQ(Reader.version(), 2u);
  EXPECT_TRUE(Reader.threadAware());

  ConcurrencyInfo Conc;
  ASSERT_TRUE(Reader.readConcurrency(Conc));
  EXPECT_EQ(Conc, Wpp.Conc);

  ConcurrentWpp Back;
  ASSERT_TRUE(Reader.readAllConcurrent(Back));
  EXPECT_EQ(Back.Conc, Wpp.Conc);
  ASSERT_EQ(Back.Body.Functions.size(), Wpp.Body.Functions.size());
  for (uint32_t T = 0; T != P.Threads; ++T)
    EXPECT_EQ(reconstructThreadTrace(Back, T), Trace.Threads[T].Trace)
        << "thread " << T;
  std::remove(Path.c_str());
}

TEST(ConcurrentArchiveTest, EncodeDeterministicAcrossJobs) {
  ConcurrentProfile P = testConcurrentProfiles()[2]; // pipelined
  ConcurrentTrace Trace = generateConcurrentTrace(P);
  ConcurrentWpp Wpp1 = compactConcurrentWpp(Trace, ParallelConfig::withJobs(1));
  ConcurrentWpp Wpp8 = compactConcurrentWpp(Trace, ParallelConfig::withJobs(8));
  EXPECT_EQ(Wpp1.Conc, Wpp8.Conc);
  std::vector<uint8_t> Bytes1 =
      encodeConcurrentArchive(Wpp1, ParallelConfig::withJobs(1));
  std::vector<uint8_t> Bytes8 =
      encodeConcurrentArchive(Wpp8, ParallelConfig::withJobs(8));
  EXPECT_EQ(Bytes1, Bytes8);
}

TEST(ConcurrentArchiveTest, SingleThreadedArchivesStayVersion1) {
  ConcurrentWpp Wpp = buildSmall();
  // The merged body alone through the v1 encoder: version field 1, no
  // trailer, and readers reject concurrency queries.
  std::vector<uint8_t> Bytes = encodeArchive(Wpp.Body);
  ByteReader Reader(Bytes);
  Reader.readFixed32(); // magic
  EXPECT_EQ(Reader.readFixed32(), 1u);

  std::string Path = tempPath("conc_v1.twpp");
  ASSERT_TRUE(writeArchiveFile(Path, Wpp.Body));
  ArchiveReader A;
  ASSERT_TRUE(A.open(Path));
  EXPECT_EQ(A.version(), 1u);
  EXPECT_FALSE(A.threadAware());
  ConcurrencyInfo Conc;
  EXPECT_FALSE(A.readConcurrency(Conc));
  EXPECT_EQ(A.lastError().CheckId, "twpp-archive-section");
  std::remove(Path.c_str());
}

TEST(ConcurrentArchiveTest, UnknownSectionTagRejected) {
  ConcurrentWpp Wpp = buildSmall();
  std::vector<uint8_t> Bytes = encodeConcurrentArchive(Wpp);

  // Locate the first section record (right after the DCG) and stamp an
  // unknown tag over it.
  ByteReader Header(Bytes);
  Header.readFixed32();
  Header.readFixed32();
  Header.readFixed32();
  uint64_t DcgOffset = Header.readFixed64();
  uint64_t DcgLength = Header.readFixed64();
  size_t TrailerAt = static_cast<size_t>(DcgOffset + DcgLength);
  ASSERT_LT(TrailerAt + 4, Bytes.size());
  Bytes[TrailerAt + 0] = 'X';
  Bytes[TrailerAt + 1] = 'X';
  Bytes[TrailerAt + 2] = 'X';
  Bytes[TrailerAt + 3] = 'X';

  std::string Path = tempPath("conc_unknown_tag.twpp");
  ASSERT_TRUE(writeFileBytes(Path, Bytes).ok());
  ArchiveReader Reader;
  EXPECT_FALSE(Reader.open(Path));
  EXPECT_EQ(Reader.lastError().CheckId, "twpp-archive-section");

  verify::DiagnosticEngine Engine;
  verify::runArchiveBytesChecks(Bytes, Engine);
  EXPECT_FALSE(Engine.clean());
  EXPECT_GE(countCheck(Engine, "twpp-archive-section"), 1u);
  std::remove(Path.c_str());
}

TEST(ConcurrentArchiveTest, TruncatedTrailerRejected) {
  ConcurrentWpp Wpp = buildSmall();
  std::vector<uint8_t> Bytes = encodeConcurrentArchive(Wpp);
  Bytes.resize(Bytes.size() - 7); // clip into the last section payload

  std::string Path = tempPath("conc_truncated.twpp");
  ASSERT_TRUE(writeFileBytes(Path, Bytes).ok());
  ArchiveReader Reader;
  EXPECT_FALSE(Reader.open(Path));
  EXPECT_EQ(Reader.lastError().CheckId, "twpp-archive-section");

  verify::DiagnosticEngine Engine;
  verify::runArchiveBytesChecks(Bytes, Engine);
  EXPECT_GE(countCheck(Engine, "twpp-archive-section"), 1u);
  std::remove(Path.c_str());
}

TEST(ConcurrentArchiveTest, VerifierAcceptsHealthyV2) {
  ConcurrentWpp Wpp = buildSmall();
  std::vector<uint8_t> Bytes = encodeConcurrentArchive(Wpp);
  verify::DiagnosticEngine Engine;
  verify::runArchiveBytesChecks(Bytes, Engine);
  EXPECT_TRUE(Engine.clean()) << verify::renderDiagnosticsText(Engine);
}

TEST(ConcurrentArchiveTest, VerifierCatchesCorruptConcurrency) {
  ConcurrentWpp Wpp = buildSmall();
  {
    // Thread table lies about a block count: the partition check and the
    // access bounds check both key off it.
    ConcurrentWpp Bad = Wpp;
    Bad.Conc.Threads[1].BlockCount /= 2;
    verify::DiagnosticEngine Engine;
    verify::runArchiveBytesChecks(encodeConcurrentArchive(Bad), Engine);
    EXPECT_GE(countCheck(Engine, "twpp-thread-partition"), 1u);
    EXPECT_GE(countCheck(Engine, "twpp-thread-access-bounds"), 1u);
  }
  {
    // An edge from a nonexistent thread.
    ConcurrentWpp Bad = Wpp;
    Bad.Conc.Edges.push_back({HbEdge::Kind::Lock, 99, 1, 0, 1});
    verify::DiagnosticEngine Engine;
    verify::runArchiveBytesChecks(encodeConcurrentArchive(Bad), Engine);
    EXPECT_GE(countCheck(Engine, "twpp-thread-sync-edges"), 1u);
  }
  {
    // Edge targets regress on thread 0: the clock family must flag it.
    ConcurrentWpp Bad = Wpp;
    Bad.Conc.Edges.push_back({HbEdge::Kind::Lock, 1, 1, 0, 2});
    Bad.Conc.Edges.push_back({HbEdge::Kind::Lock, 1, 2, 0, 1});
    verify::DiagnosticEngine Engine;
    verify::runArchiveBytesChecks(encodeConcurrentArchive(Bad), Engine);
    EXPECT_GE(countCheck(Engine, "twpp-race-clock-monotone"), 1u);
  }
}

} // namespace
