//===- tests/ParallelPipelineTest.cpp - pool + parallel determinism --------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the work-stealing ThreadPool / parallelFor, and the
/// determinism guarantee of the parallel compaction path: for any job
/// count the pipeline must produce results — down to the archive bytes —
/// identical to the serial path.
///
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"
#include "support/ThreadPool.h"
#include "workloads/Workload.h"
#include "wpp/Archive.h"
#include "wpp/Streaming.h"

#include "TestTraces.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

using namespace twpp;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);
  constexpr int TaskCount = 500;
  std::vector<std::atomic<int>> Hits(TaskCount);
  for (int I = 0; I < TaskCount; ++I)
    Pool.run([&Hits, I] { Hits[I].fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  for (int I = 0; I < TaskCount; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "task " << I;
  EXPECT_EQ(Pool.taskCount(), static_cast<uint64_t>(TaskCount));
}

TEST(ThreadPool, WaitWithNoTasksReturns) {
  ThreadPool Pool(2);
  Pool.wait();
  Pool.wait(); // wait() is idempotent.
  EXPECT_EQ(Pool.taskCount(), 0u);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool Pool(3);
  std::atomic<int> Sum{0};
  for (int Round = 0; Round < 5; ++Round) {
    for (int I = 0; I < 64; ++I)
      Pool.run([&Sum] { Sum.fetch_add(1, std::memory_order_relaxed); });
    Pool.wait();
    EXPECT_EQ(Sum.load(), (Round + 1) * 64);
  }
}

TEST(ThreadPool, TasksMaySpawnSubtasks) {
  // run() from inside a task must be legal and the subtasks must finish
  // before wait() returns.
  ThreadPool Pool(4);
  std::atomic<int> Leaves{0};
  for (int I = 0; I < 16; ++I)
    Pool.run([&Pool, &Leaves] {
      for (int J = 0; J < 8; ++J)
        Pool.run([&Leaves] { Leaves.fetch_add(1, std::memory_order_relaxed); });
    });
  Pool.wait();
  EXPECT_EQ(Leaves.load(), 16 * 8);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 100; ++I)
      Pool.run([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
    // No wait(): the destructor must drain the queue before joining.
  }
  EXPECT_EQ(Ran.load(), 100);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool Pool(1);
  std::atomic<int> Sum{0};
  for (int I = 1; I <= 10; ++I)
    Pool.run([&Sum, I] { Sum.fetch_add(I, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Sum.load(), 55);
  EXPECT_EQ(Pool.stealCount(), 0u); // Nobody to steal from.
}

//===----------------------------------------------------------------------===//
// parallelFor
//===----------------------------------------------------------------------===//

TEST(ParallelFor, CoversEveryIndex) {
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> Hits(257);
    parallelFor(ParallelConfig::withJobs(Jobs), Hits.size(),
                [&Hits](size_t I) {
                  Hits[I].fetch_add(1, std::memory_order_relaxed);
                });
    for (size_t I = 0; I < Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "jobs " << Jobs << " index " << I;
  }
}

TEST(ParallelFor, ZeroAndOneElementRanges) {
  int Calls = 0;
  parallelFor(ParallelConfig::withJobs(8), 0,
              [&Calls](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  parallelFor(ParallelConfig::withJobs(8), 1,
              [&Calls](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 1);
}

TEST(ParallelFor, MatchesSerialResult) {
  // Independent per-slot writes: the parallel schedule must not change
  // the result.
  std::vector<uint64_t> Serial(1000), Parallel(1000);
  auto Fill = [](std::vector<uint64_t> &Out) {
    return [&Out](size_t I) { Out[I] = I * I + 7; };
  };
  parallelFor(ParallelConfig::withJobs(1), Serial.size(), Fill(Serial));
  parallelFor(ParallelConfig::withJobs(8), Parallel.size(), Fill(Parallel));
  EXPECT_EQ(Serial, Parallel);
}

TEST(ParallelConfigTest, EffectiveJobs) {
  EXPECT_EQ(ParallelConfig::withJobs(1).effectiveJobs(), 1u);
  EXPECT_EQ(ParallelConfig::withJobs(6).effectiveJobs(), 6u);
  EXPECT_FALSE(ParallelConfig::withJobs(1).parallel());
  EXPECT_TRUE(ParallelConfig::withJobs(2).parallel());
  // Jobs = 0 resolves to the hardware concurrency, never to zero.
  EXPECT_GE(ParallelConfig::withJobs(0).effectiveJobs(), 1u);
}

//===----------------------------------------------------------------------===//
// Parallel pipeline determinism
//===----------------------------------------------------------------------===//

/// Compacts \p Trace serially and with 8 jobs and asserts every stage
/// result and the final archive bytes are identical.
void checkJobCountInvariance(const RawTrace &Trace, const std::string &Tag) {
  ParallelConfig Serial = ParallelConfig::withJobs(1);
  ParallelConfig Wide = ParallelConfig::withJobs(8);

  TwppWpp SerialWpp = compactWpp(Trace, Serial);
  TwppWpp WideWpp = compactWpp(Trace, Wide);
  ASSERT_EQ(SerialWpp, WideWpp) << Tag;

  std::vector<uint8_t> SerialBytes = encodeArchive(SerialWpp, Serial);
  std::vector<uint8_t> WideBytes = encodeArchive(WideWpp, Wide);
  ASSERT_EQ(SerialBytes, WideBytes) << Tag << ": archive bytes differ";
}

TEST(ParallelDeterminism, Figure1Trace) {
  checkJobCountInvariance(fixtures::figure1Trace(), "figure1");
}

TEST(ParallelDeterminism, RandomTraces) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed)
    checkJobCountInvariance(fixtures::randomTrace(Seed, 8, 3000),
                            "seed " + std::to_string(Seed));
}

TEST(ParallelDeterminism, TestProfileWorkloads) {
  // The reduced-scale paper workloads: realistic shape, many functions,
  // skewed per-function work — the case the work-stealing pool exists for.
  for (const WorkloadProfile &Profile : testProfiles()) {
    RawTrace Trace = generateWorkloadTrace(Profile);
    checkJobCountInvariance(Trace, Profile.Name);
  }
}

TEST(ParallelDeterminism, ArchiveFilesAreByteIdentical) {
  // cmp-level check through the file layer, the satellite's exact claim:
  // `--jobs 1` and `--jobs 8` archives compare equal byte for byte.
  RawTrace Trace = generateWorkloadTrace(testProfiles().front());
  TwppWpp Wpp = compactWpp(Trace);

  std::string PathSerial = tempPath("jobs1.twpp");
  std::string PathWide = tempPath("jobs8.twpp");
  ASSERT_TRUE(
      writeArchiveFile(PathSerial, Wpp, ParallelConfig::withJobs(1)));
  ASSERT_TRUE(writeArchiveFile(PathWide, Wpp, ParallelConfig::withJobs(8)));

  std::vector<uint8_t> SerialBytes, WideBytes;
  ASSERT_TRUE(readFileBytes(PathSerial, SerialBytes));
  ASSERT_TRUE(readFileBytes(PathWide, WideBytes));
  EXPECT_EQ(SerialBytes, WideBytes);
  std::remove(PathSerial.c_str());
  std::remove(PathWide.c_str());
}

TEST(ParallelDeterminism, StreamingCompactorParallelPath) {
  // The online sink's parallel finalization must equal the serial batch
  // pipeline result.
  RawTrace Trace = fixtures::randomTrace(99, 6, 2500);
  StreamingCompactor Sink(Trace.FunctionCount);
  for (const TraceEvent &Event : Trace.Events) {
    switch (Event.EventKind) {
    case TraceEvent::Kind::Enter:
      Sink.onEnter(Event.Id);
      break;
    case TraceEvent::Kind::Block:
      Sink.onBlock(Event.Id);
      break;
    case TraceEvent::Kind::Exit:
      Sink.onExit();
      break;
    }
  }
  ASSERT_TRUE(Sink.balanced());
  EXPECT_EQ(Sink.takeCompacted(ParallelConfig::withJobs(8)),
            compactWpp(Trace));
}

} // namespace
