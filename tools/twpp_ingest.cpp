//===- tools/twpp_ingest.cpp - Multi-producer ingestion CLI ---------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Front door of the ingestion frontend (src/ingest/): accepts
// twpp-wire-v1 trace streams from N producers and writes one
// verifier-clean archive per producer. Three modes:
//
//   twpp_ingest replay --producers=4 --out=run                (loopback)
//   twpp_ingest serve --socket=/tmp/twpp.sock --producers=4 --out=run
//   twpp_ingest produce --socket=/tmp/twpp.sock --producer-id=2
//
// `replay` spins the producers up in-process over socketpairs — the
// one-command form the throughput bench and the chaos sweep build on.
// `serve` + `produce` split the same exchange across processes so a
// producer can be SIGKILL'd, stalled or disconnected for real.
//
// Robustness contract (CI asserts it): exit 0 means every producer was
// lossless and the archives are byte-identical to an in-process
// compaction of the same traces; exit 1 means ingestion completed but
// something was lost or degraded — and the report says exactly what;
// exit 2 means usage error or fatal setup failure. Wire damage, producer
// crashes, queue overflow and memory pressure all land in the 0/1 arms,
// never in a crash or a hang.
//
//   --out=PREFIX           write <PREFIX>.p<ID>.twppa per producer
//   --journal=PREFIX       checkpoint journals <PREFIX>.p<ID>.twppj
//   --resume               resume each producer from its journal
//   --crash-after-checkpoints=N  raise(SIGKILL) after the Nth checkpoint
//                          (durability drills; pair with --resume rerun)
//   --checkpoint-interval=N  frames between checkpoints (default 64)
//   --memory-budget=BYTES  per-producer degradable-state budget
//   --queue-capacity=N     bounded queue size in frames (default 1024)
//   --policy=block|shed    backpressure policy (default block)
//   --reorder-window=N     out-of-order frames buffered (default 16)
//   --idle-timeout-ms=N    per-connection idle cutoff (default 10000)
//   --jobs=N               compaction parallelism on drain
//   --scale=test|paper     workload scale for replay/produce
//   --profile=NAME         use one named workload for every producer
//   --seed=N               workload seed base (producer i adds i)
//   --batch-events=N       events per wire frame (default 4096)
//   --fault=SPEC           install a TWPP_FAULT spec programmatically
//   --format=text|json     report format (schema twpp-ingest-v1)
//   --metrics-out=FILE     write the ingest.* metrics export to FILE
//
//===----------------------------------------------------------------------===//

#include "ingest/Ingest.h"
#include "ingest/Producer.h"
#include "obs/Export.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "support/CliCommon.h"
#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "workloads/Workload.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace twpp;
using namespace twpp::ingest;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: twpp_ingest MODE [options]\n"
      "modes:\n"
      "  replay    in-process producers over loopback sockets\n"
      "  serve     accept producers on a unix socket (--socket, "
      "--producers)\n"
      "  produce   one replay producer connecting to a server (--socket, "
      "--producer-id)\n"
      "options:\n"
      "  --out=PREFIX --journal=PREFIX --resume\n"
      "  --crash-after-checkpoints=N --checkpoint-interval=N\n"
      "  --memory-budget=BYTES --queue-capacity=N --policy=block|shed\n"
      "  --reorder-window=N --idle-timeout-ms=N --jobs=N\n"
      "  --scale=test|paper --profile=NAME --seed=N --batch-events=N\n"
      "  --fault=SPEC --format=text|json --metrics-out=FILE\n"
      "exit codes: 0 lossless, 1 completed with accounted loss/degradation,"
      "\n2 usage or fatal error\n");
  return cli::ExitUsage;
}

bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return End && *End == '\0';
}

struct ToolOptions {
  std::string Mode;
  IngestConfig Config;
  std::string Format = "text";
  std::string MetricsOut;
  std::string SocketPath;
  std::string ProfileName;
  std::string Scale = "test";
  uint64_t Producers = 4;
  uint64_t ProducerId = 0;
  uint64_t SeedBase = 0;
  uint64_t BatchEvents = 4096;
  uint64_t CrashAfterCheckpoints = 0;
};

/// Builds the deterministic replay trace of producer \p Index: the
/// selected workload profile reseeded per producer so streams differ but
/// reruns (and the golden in-process compaction CI diffs against) agree
/// byte for byte.
RawTrace producerTrace(const ToolOptions &Options, uint64_t Index) {
  std::vector<WorkloadProfile> Profiles = Options.Scale == "paper"
                                              ? paperProfiles()
                                              : testProfiles();
  WorkloadProfile Profile;
  if (!Options.ProfileName.empty()) {
    bool Found = false;
    for (const WorkloadProfile &Candidate : Profiles)
      if (Candidate.Name == Options.ProfileName) {
        Profile = Candidate;
        Found = true;
        break;
      }
    if (!Found) {
      std::fprintf(stderr, "twpp_ingest: unknown profile '%s'\n",
                   Options.ProfileName.c_str());
      std::exit(cli::ExitUsage);
    }
  } else {
    Profile = Profiles[static_cast<size_t>(Index) % Profiles.size()];
  }
  Profile.Seed += Options.SeedBase + Index;
  return generateWorkloadTrace(Profile);
}

std::string renderReportText(const IngestReport &Report) {
  std::string Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line),
                "ingest: %zu producer(s), %llu frames, %llu events, "
                "%.1f ms%s\n",
                Report.Producers.size(),
                static_cast<unsigned long long>(Report.Frames),
                static_cast<unsigned long long>(Report.EventsApplied),
                Report.ElapsedUs / 1000.0,
                Report.clean() ? "" : " [LOSSY]");
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "  wire: %llu corrupt, %llu resync bytes, %llu retries, "
                "%llu idle timeouts, queue peak %llu, %llu waits\n",
                static_cast<unsigned long long>(Report.CorruptFrames),
                static_cast<unsigned long long>(Report.ResyncBytes),
                static_cast<unsigned long long>(Report.ReadRetries),
                static_cast<unsigned long long>(Report.IdleTimeouts),
                static_cast<unsigned long long>(Report.QueueDepthPeak),
                static_cast<unsigned long long>(Report.BackpressureWaits));
  Out += Line;
  for (const ProducerReport &P : Report.Producers) {
    std::snprintf(
        Line, sizeof(Line),
        "  p%u: %llu/%llu events, %llu dropped, %llu lost, %llu gaps, "
        "%llu dup, %llu reordered, %llu shed, %llu synth exits%s%s%s%s\n",
        P.ProducerId, static_cast<unsigned long long>(P.EventsApplied),
        static_cast<unsigned long long>(P.EventsDeclared),
        static_cast<unsigned long long>(P.EventsDropped),
        static_cast<unsigned long long>(P.eventsLost()),
        static_cast<unsigned long long>(P.SeqGaps),
        static_cast<unsigned long long>(P.FramesDuplicate),
        static_cast<unsigned long long>(P.FramesReordered),
        static_cast<unsigned long long>(P.ShedFrames),
        static_cast<unsigned long long>(P.SynthesizedExits),
        P.Resumed ? ", resumed" : "", P.Disconnected ? ", DISCONNECTED" : "",
        P.lossless() ? "" : " [lossy]",
        P.ArchiveError.ok() ? "" : " [archive write failed]");
    Out += Line;
    if (!P.ArchivePath.empty() && P.ArchiveError.ok())
      Out += "      -> " + P.ArchivePath + "\n";
  }
  return Out;
}

std::string u64(uint64_t V) { return std::to_string(V); }

std::string renderReportJson(const IngestReport &Report) {
  std::string Out = "{\"schema\": \"twpp-ingest-v1\", \"clean\": ";
  Out += Report.clean() ? "true" : "false";
  Out += ", \"aborted\": ";
  Out += Report.Aborted ? "true" : "false";
  Out += ", \"frames\": " + u64(Report.Frames);
  Out += ", \"frame_bytes\": " + u64(Report.FrameBytes);
  Out += ", \"events\": " + u64(Report.EventsApplied);
  Out += ", \"corrupt_frames\": " + u64(Report.CorruptFrames);
  Out += ", \"resync_bytes\": " + u64(Report.ResyncBytes);
  Out += ", \"read_retries\": " + u64(Report.ReadRetries);
  Out += ", \"idle_timeouts\": " + u64(Report.IdleTimeouts);
  Out += ", \"backpressure_waits\": " + u64(Report.BackpressureWaits);
  Out += ", \"queue_depth_peak\": " + u64(Report.QueueDepthPeak);
  Out += ", \"elapsed_us\": " + std::to_string(Report.ElapsedUs);
  if (!Report.FatalError.empty())
    Out += ", \"fatal\": " + obs::jsonStringLiteral(Report.FatalError);
  Out += ", \"producers\": [";
  bool First = true;
  for (const ProducerReport &P : Report.Producers) {
    Out += First ? "" : ", ";
    First = false;
    Out += "{\"id\": " + u64(P.ProducerId);
    Out += ", \"lossless\": ";
    Out += P.lossless() ? "true" : "false";
    Out += ", \"function_count\": " + u64(P.FunctionCount);
    Out += ", \"saw_hello\": ";
    Out += P.SawHello ? "true" : "false";
    Out += ", \"saw_bye\": ";
    Out += P.SawBye ? "true" : "false";
    Out += ", \"resumed\": ";
    Out += P.Resumed ? "true" : "false";
    Out += ", \"disconnected\": ";
    Out += P.Disconnected ? "true" : "false";
    Out += ", \"frames_applied\": " + u64(P.FramesApplied);
    Out += ", \"events_applied\": " + u64(P.EventsApplied);
    Out += ", \"events_declared\": " + u64(P.EventsDeclared);
    Out += ", \"events_dropped\": " + u64(P.EventsDropped);
    Out += ", \"events_lost\": " + u64(P.eventsLost());
    Out += ", \"frames_invalid\": " + u64(P.FramesInvalid);
    Out += ", \"frames_duplicate\": " + u64(P.FramesDuplicate);
    Out += ", \"frames_reordered\": " + u64(P.FramesReordered);
    Out += ", \"frames_replayed\": " + u64(P.FramesReplayed);
    Out += ", \"seq_gaps\": " + u64(P.SeqGaps);
    Out += ", \"shed_frames\": " + u64(P.ShedFrames);
    Out += ", \"shed_bytes\": " + u64(P.ShedBytes);
    Out += ", \"synthesized_exits\": " + u64(P.SynthesizedExits);
    Out += ", \"degraded_frames\": " + u64(P.DegradedFrames);
    Out += ", \"checkpoints\": " + u64(P.CheckpointsWritten);
    Out += ", \"checkpoint_failures\": " + u64(P.CheckpointFailures);
    if (!P.ArchivePath.empty())
      Out += ", \"archive\": " + obs::jsonStringLiteral(P.ArchivePath);
    if (!P.ArchiveError.ok())
      Out += ", \"archive_error\": " +
             obs::jsonStringLiteral(P.ArchiveError.message());
    Out += "}";
  }
  Out += "]}\n";
  return Out;
}

int finishRun(const ToolOptions &Options, const IngestReport &Report) {
  if (!Report.FatalError.empty()) {
    std::fprintf(stderr, "twpp_ingest: %s\n", Report.FatalError.c_str());
    return cli::ExitUsage;
  }
  if (!Options.MetricsOut.empty()) {
    obs::names::registerCanonicalMetrics(obs::metrics());
    publishIngestMetrics(Report);
    if (!obs::writeMetricsJsonFile(Options.MetricsOut, obs::metrics())) {
      std::fprintf(stderr, "twpp_ingest: cannot write %s\n",
                   Options.MetricsOut.c_str());
      return cli::ExitUsage;
    }
  }
  std::string Rendered = Options.Format == "json"
                             ? renderReportJson(Report)
                             : renderReportText(Report);
  std::fputs(Rendered.c_str(), stdout);
  return Report.clean() ? cli::ExitSuccess : cli::ExitFindings;
}

int runReplay(const ToolOptions &Options) {
  std::vector<RawTrace> Traces;
  for (uint64_t I = 0; I < Options.Producers; ++I)
    Traces.push_back(producerTrace(Options, I));

  IngestServer Server(Options.Config);
  if (Options.CrashAfterCheckpoints != 0)
    Server.setCrashAfterCheckpoints(Options.CrashAfterCheckpoints,
                                    [] { raise(SIGKILL); });

  std::vector<std::thread> Threads;
  std::vector<int> Fds;
  for (size_t I = 0; I < Traces.size(); ++I) {
    int Sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) != 0) {
      std::fprintf(stderr, "twpp_ingest: socketpair: %s\n",
                   std::strerror(errno));
      return cli::ExitUsage;
    }
    Server.addConnection(Sv[0]);
    Fds.push_back(Sv[1]);
  }
  for (size_t I = 0; I < Traces.size(); ++I) {
    ProducerOptions PO;
    PO.ProducerId = static_cast<uint32_t>(I);
    PO.BatchEvents = static_cast<size_t>(Options.BatchEvents);
    int Fd = Fds[I];
    const RawTrace *Trace = &Traces[I];
    Threads.emplace_back([Fd, Trace, PO] {
      sendTraceOverFd(Fd, *Trace, PO);
      ::close(Fd);
    });
  }
  IngestReport Report = Server.run();
  for (std::thread &T : Threads)
    T.join();
  return finishRun(Options, Report);
}

int runServe(const ToolOptions &Options) {
  if (Options.SocketPath.empty())
    return usage();
  IngestServer Server(Options.Config);
  if (Options.CrashAfterCheckpoints != 0)
    Server.setCrashAfterCheckpoints(Options.CrashAfterCheckpoints,
                                    [] { raise(SIGKILL); });
  std::string Error;
  if (!Server.listenUnixSocket(Options.SocketPath,
                               static_cast<size_t>(Options.Producers),
                               &Error)) {
    std::fprintf(stderr, "twpp_ingest: %s\n", Error.c_str());
    return cli::ExitUsage;
  }
  return finishRun(Options, Server.run());
}

int runProduce(const ToolOptions &Options) {
  if (Options.SocketPath.empty())
    return usage();
  std::string Error;
  int Fd = connectUnixSocket(Options.SocketPath, &Error);
  if (Fd < 0) {
    std::fprintf(stderr, "twpp_ingest: %s\n", Error.c_str());
    return cli::ExitUsage;
  }
  RawTrace Trace = producerTrace(Options, Options.ProducerId);
  ProducerOptions PO;
  PO.ProducerId = static_cast<uint32_t>(Options.ProducerId);
  PO.BatchEvents = static_cast<size_t>(Options.BatchEvents);
  ProducerWireStats Stats;
  bool Ok = sendTraceOverFd(Fd, Trace, PO, &Stats);
#if !defined(_WIN32)
  ::close(Fd);
#endif
  if (!Ok) {
    std::fprintf(stderr, "twpp_ingest: producer %llu: send failed "
                         "(receiver gone)\n",
                 static_cast<unsigned long long>(Options.ProducerId));
    return cli::ExitFindings;
  }
  std::printf("producer %llu: %llu frames, %llu bytes, %llu events\n",
              static_cast<unsigned long long>(Options.ProducerId),
              static_cast<unsigned long long>(Stats.FramesSent),
              static_cast<unsigned long long>(Stats.BytesSent),
              static_cast<unsigned long long>(Trace.Events.size()));
  return cli::ExitSuccess;
}

} // namespace

int main(int Argc, char **Argv) {
#if !defined(_WIN32)
  // A producer vanishing mid-frame must surface as EPIPE on the write,
  // not kill the server (degrade-never-abort starts here).
  std::signal(SIGPIPE, SIG_IGN);
#endif

  ToolOptions Options;
  if (Argc < 2)
    return usage();
  Options.Mode = Argv[1];
  if (Options.Mode != "replay" && Options.Mode != "serve" &&
      Options.Mode != "produce")
    return usage();

  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    switch (cli::parseCommonFlag(Arg, Options.Format)) {
    case cli::FlagParse::Ok:
      continue;
    case cli::FlagParse::Bad:
      return usage();
    case cli::FlagParse::NoMatch:
      break;
    }
    std::string Value;
    uint64_t Number = 0;
    if (cli::flagValue(Arg, "out", Value)) {
      Options.Config.OutPrefix = Value;
    } else if (cli::flagValue(Arg, "journal", Value)) {
      Options.Config.JournalPrefix = Value;
    } else if (Arg == "--resume") {
      Options.Config.Resume = true;
    } else if (cli::flagValue(Arg, "crash-after-checkpoints", Value)) {
      if (!parseU64(Value, Options.CrashAfterCheckpoints))
        return usage();
    } else if (cli::flagValue(Arg, "checkpoint-interval", Value)) {
      if (!parseU64(Value, Options.Config.CheckpointIntervalFrames))
        return usage();
    } else if (cli::flagValue(Arg, "memory-budget", Value)) {
      if (!parseU64(Value, Options.Config.MemoryBudgetBytes))
        return usage();
    } else if (cli::flagValue(Arg, "queue-capacity", Value)) {
      if (!parseU64(Value, Number) || Number == 0)
        return usage();
      Options.Config.QueueCapacity = static_cast<size_t>(Number);
    } else if (cli::flagValue(Arg, "policy", Value)) {
      if (!parseBackpressurePolicy(Value, Options.Config.Policy))
        return usage();
    } else if (cli::flagValue(Arg, "reorder-window", Value)) {
      if (!parseU64(Value, Number) || Number == 0)
        return usage();
      Options.Config.ReorderWindow = static_cast<size_t>(Number);
    } else if (cli::flagValue(Arg, "idle-timeout-ms", Value)) {
      if (!parseU64(Value, Number) || Number == 0)
        return usage();
      Options.Config.IdleTimeoutMs = static_cast<unsigned>(Number);
    } else if (cli::flagValue(Arg, "jobs", Value)) {
      if (!parseU64(Value, Number))
        return usage();
      Options.Config.Parallel.Jobs = static_cast<unsigned>(Number);
    } else if (cli::flagValue(Arg, "scale", Value)) {
      if (Value != "test" && Value != "paper")
        return usage();
      Options.Scale = Value;
    } else if (cli::flagValue(Arg, "profile", Value)) {
      Options.ProfileName = Value;
    } else if (cli::flagValue(Arg, "seed", Value)) {
      if (!parseU64(Value, Options.SeedBase))
        return usage();
    } else if (cli::flagValue(Arg, "batch-events", Value)) {
      if (!parseU64(Value, Options.BatchEvents) ||
          Options.BatchEvents == 0)
        return usage();
    } else if (cli::flagValue(Arg, "producers", Value)) {
      if (!parseU64(Value, Options.Producers) || Options.Producers == 0)
        return usage();
    } else if (cli::flagValue(Arg, "producer-id", Value)) {
      if (!parseU64(Value, Options.ProducerId))
        return usage();
    } else if (cli::flagValue(Arg, "socket", Value)) {
      Options.SocketPath = Value;
    } else if (cli::flagValue(Arg, "metrics-out", Value)) {
      Options.MetricsOut = Value;
    } else if (cli::flagValue(Arg, "fault", Value)) {
      std::string Error;
      if (!fault::setFaultSpec(Value, &Error)) {
        std::fprintf(stderr, "twpp_ingest: bad --fault spec: %s\n",
                     Error.c_str());
        return usage();
      }
    } else {
      return usage();
    }
  }

  if (Options.Mode == "replay")
    return runReplay(Options);
  if (Options.Mode == "serve")
    return runServe(Options);
  return runProduce(Options);
}
