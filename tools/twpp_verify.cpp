//===- tools/twpp_verify.cpp - TWPP invariant verifier CLI ----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Runs the static invariant checks (src/verify/) over archives, lowered
// mini-language programs, or both, and reports clang-tidy style
// diagnostics with stable check ids:
//
//   twpp_verify out.twpp
//   twpp_verify --checks='twpp-archive-*' out.twpp
//   twpp_verify --program prog.mini --format=json out.twpp
//   twpp_verify --list-checks
//
// Archive checks run on the raw bytes without reconstructing the WPP:
// header/index layout first, then the decoded compacted form (series
// order, trace partitions, DBB dictionaries, dedup tables, DCG). With
// --program, the module is lowered and the IR family runs (CFG edges,
// terminators, reachability, def-before-use), plus the dataflow family
// over per-variable GEN/KILL fact specs. When both an archive and a
// program are given, annotated dynamic CFGs are built from every unique
// trace and checked against their owning traces.
//
//   --checks=GLOB     only run checks whose id matches GLOB (default *)
//   --format=FMT      text (default) or json
//   --list-checks     print the catalog (id, severity, summary) and exit
//   --program FILE    lower FILE and run the IR/dataflow families
//
// Exit codes: 0 no error-severity diagnostics, 1 at least one error
// diagnostic, 2 usage or IO failure — the same contract as
// twpp_metrics_diff.
//
//===----------------------------------------------------------------------===//

#include "dataflow/AnnotatedCfg.h"
#include "dataflow/IrFacts.h"
#include "lang/Lower.h"
#include "support/CliCommon.h"
#include "support/FileIO.h"
#include "verify/Verify.h"
#include "wpp/Archive.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace twpp;
using namespace twpp::verify;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: twpp_verify [options] [archive.twpp...]\n"
      "  --checks=GLOB   only run checks matching GLOB (default '*')\n"
      "  --format=FMT    output format: text (default) or json\n"
      "  --io=MODE       archive read path: mmap (default) or buffered\n"
      "  --list-checks   print every check id with severity and summary\n"
      "  --program FILE  lower FILE (mini language) and run the IR and\n"
      "                  dataflow check families\n"
      "exit codes: 0 clean, 1 error diagnostics, 2 usage/IO error\n");
  return cli::ExitUsage;
}

int listChecks() {
  for (const CheckInfo &Info : checkCatalog())
    std::printf("%-36s %-8s %s\n", Info.Id, severityName(Info.DefaultSev),
                Info.Summary);
  return 0;
}

/// Runs the dataflow family over every per-variable fact spec of \p M.
void runFactChecks(const Module &M, DiagnosticEngine &Engine) {
  for (const Function &F : M.Functions) {
    // Variables the function touches: params plus statement targets/uses.
    std::vector<VarId> Vars(F.Params.begin(), F.Params.end());
    for (const BasicBlock &Block : F.Blocks)
      for (const Stmt &St : Block.Stmts) {
        if (St.Target != NoVar)
          Vars.push_back(St.Target);
        for (VarId Use : stmtUses(F, St))
          Vars.push_back(Use);
      }
    std::sort(Vars.begin(), Vars.end());
    Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
    for (VarId Var : Vars) {
      runFactSpecChecks(availabilityFact(F, Var), F,
                        "availability(" + M.varName(Var) + ")", Engine);
      runFactSpecChecks(definedFact(F, Var), F,
                        "defined(" + M.varName(Var) + ")", Engine);
    }
  }
}

/// Builds the annotated dynamic CFG of every unique trace in \p Path's
/// archive and checks it against its owning trace.
bool runAnnotationChecks(const std::string &Path, DiagnosticEngine &Engine) {
  TwppWpp Wpp;
  ArchiveReader Reader;
  if (!Reader.open(Path) || !Reader.readAll(Wpp))
    return true; // the byte checks already diagnosed the archive
  for (size_t F = 0; F < Wpp.Functions.size(); ++F) {
    const TwppFunctionTable &Table = Wpp.Functions[F];
    for (size_t T = 0; T < Table.Traces.size(); ++T) {
      auto [StringIdx, DictIdx] = Table.Traces[T];
      if (StringIdx >= Table.TraceStrings.size() ||
          DictIdx >= Table.Dictionaries.size())
        continue;
      const TwppTrace &Trace = Table.TraceStrings[StringIdx];
      const DbbDictionary &Dict = Table.Dictionaries[DictIdx];
      AnnotatedDynamicCfg Cfg = buildAnnotatedCfg(Trace, Dict);
      std::string Loc = Path + " / function " + std::to_string(F) +
                        " / trace " + std::to_string(T);
      runAnnotatedCfgChecks(Cfg, Loc, Engine);
      runAnnotationSourceChecks(Cfg, Trace, Dict, Loc, Engine);
    }
  }
  return true;
}

bool anyDataflowCheckEnabled(const DiagnosticEngine &Engine) {
  for (const CheckInfo &Info : checkCatalog())
    if (std::strncmp(Info.Id, "twpp-dataflow-", 14) == 0 &&
        Engine.checkEnabled(Info.Id))
      return true;
  return false;
}

bool anyMemCheckEnabled(const DiagnosticEngine &Engine) {
  for (const CheckInfo &Info : checkCatalog())
    if (std::strncmp(Info.Id, "twpp-mem-", 9) == 0 &&
        Engine.checkEnabled(Info.Id))
      return true;
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Glob = "*";
  std::string Format = "text";
  std::string ProgramPath;
  std::vector<std::string> Archives;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--list-checks")
      return listChecks();
    switch (cli::parseCommonFlag(Arg, Format)) {
    case cli::FlagParse::Ok:
      continue;
    case cli::FlagParse::Bad:
      return usage();
    case cli::FlagParse::NoMatch:
      break;
    }
    if (Arg.rfind("--checks=", 0) == 0) {
      Glob = Arg.substr(9);
    } else if (Arg == "--program") {
      if (++I >= Argc)
        return usage();
      ProgramPath = Argv[I];
    } else if (Arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      Archives.push_back(Arg);
    }
  }
  if (Archives.empty() && ProgramPath.empty())
    return usage();

  DiagnosticEngine Engine(Glob);

  for (const std::string &Path : Archives) {
    if (!verifyArchiveFile(Path, Engine)) {
      std::fprintf(stderr, "twpp_verify: cannot read %s\n", Path.c_str());
      return cli::ExitUsage;
    }
    if (anyDataflowCheckEnabled(Engine))
      runAnnotationChecks(Path, Engine);
    if (anyMemCheckEnabled(Engine))
      runMemoryChecks(Path, Engine);
  }

  if (!ProgramPath.empty()) {
    std::vector<uint8_t> Bytes;
    if (!readFileBytes(ProgramPath, Bytes)) {
      std::fprintf(stderr, "twpp_verify: cannot read %s\n",
                   ProgramPath.c_str());
      return cli::ExitUsage;
    }
    std::string Source(Bytes.begin(), Bytes.end());
    Module M;
    std::string Error;
    if (!compileProgram(Source, M, Error)) {
      std::fprintf(stderr, "twpp_verify: %s: %s\n", ProgramPath.c_str(),
                   Error.c_str());
      return cli::ExitUsage;
    }
    runModuleChecks(M, Engine);
    runFactChecks(M, Engine);
  }

  std::string Out = Format == "json" ? renderDiagnosticsJson(Engine)
                                     : renderDiagnosticsText(Engine);
  std::fputs(Out.c_str(), stdout);
  return Engine.clean() ? cli::ExitSuccess : cli::ExitFindings;
}
