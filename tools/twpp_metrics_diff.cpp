//===- tools/twpp_metrics_diff.cpp - Metrics baseline comparator -----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Compares two telemetry exports and fails when a named counter or gauge
// regressed beyond a threshold, turning a committed metrics file (the
// repo's BENCH_metrics.json) into an enforceable baseline instead of a
// dead artifact:
//
//   twpp_metrics_diff BENCH_metrics.json fresh.jsonl \
//       --metric twpp.bytes_out --metric archive.bytes --threshold-pct 5
//
// Both export shapes are accepted on either side: the single-object
// `exportMetricsJson` document (twpp_tool --metrics-out) and the
// JSON-lines `exportMetricsJsonLines` form the bench binaries write (one
// labelled record per metric per checkpoint). Entries are matched on
// (label, name); the single-object form carries an empty label.
//
//   --metric NAME        enforce NAME (repeatable; counters and gauges)
//   --all                enforce every counter/gauge present in both files
//   --threshold-pct P    allowed relative increase, percent (default 5)
//   --list               print every matched entry with its delta
//   --list-metrics       enumerate every baseline key with its baseline and
//                        current value (keys absent from the current file
//                        are marked missing); usable on its own to inspect
//                        what a committed baseline actually gates
//
// Exit codes: 0 no regression, 1 regression, 2 usage or parse error.
//
//===----------------------------------------------------------------------===//

#include "support/CliCommon.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON reader: just enough to walk the two exporter shapes.
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } K = Kind::Null;
  double Number = 0;
  bool Bool = false;
  std::string String;
  std::vector<JsonValue> Array;
  std::vector<std::pair<std::string, JsonValue>> Object;

  const JsonValue *field(const std::string &Name) const {
    for (const auto &[Key, Value] : Object)
      if (Key == Name)
        return &Value;
    return nullptr;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  bool parse(JsonValue &Out) {
    skipSpace();
    if (!value(Out))
      return false;
    skipSpace();
    return Pos == Text.size();
  }

private:
  bool value(JsonValue &Out) {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object(Out);
    case '[':
      return array(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return string(Out.String);
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = false;
      return literal("false");
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    default:
      Out.K = JsonValue::Kind::Number;
      return number(Out.Number);
    }
  }

  bool object(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipSpace();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      std::string Key;
      if (!string(Key))
        return false;
      skipSpace();
      if (peek() != ':')
        return false;
      ++Pos;
      skipSpace();
      JsonValue Member;
      if (!value(Member))
        return false;
      Out.Object.emplace_back(std::move(Key), std::move(Member));
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipSpace();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      JsonValue Element;
      if (!value(Element))
        return false;
      Out.Array.push_back(std::move(Element));
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string(std::string &Out) {
    if (peek() != '"')
      return false;
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos];
      if (C == '\\') {
        if (++Pos >= Text.size())
          return false;
        char E = Text[Pos];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out += E;
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'u': {
          if (Pos + 4 >= Text.size())
            return false;
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[++Pos];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else
              return false;
          }
          // Exports only escape control bytes, so a one-byte append is
          // enough for round-tripping our own files.
          Out += static_cast<char>(Code & 0xFF);
          break;
        }
        default:
          return false;
        }
      } else {
        Out += C;
      }
      ++Pos;
    }
    if (Pos >= Text.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool number(double &Out) {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            std::strchr("+-.eE", Text[Pos])))
      ++Pos;
    if (Pos == Start)
      return false;
    Out = std::strtod(Text.substr(Start, Pos - Start).c_str(), nullptr);
    return true;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  const std::string &Text;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Export loading: (label, name) -> value for counters and gauges.
//===----------------------------------------------------------------------===//

struct MetricKey {
  std::string Label;
  std::string Name;
  bool operator<(const MetricKey &Other) const {
    return Label != Other.Label ? Label < Other.Label : Name < Other.Name;
  }
};

using MetricTable = std::map<MetricKey, double>;

bool loadSingleObject(const JsonValue &Doc, MetricTable &Out) {
  for (const char *Section : {"counters", "gauges"}) {
    const JsonValue *Map = Doc.field(Section);
    if (!Map || Map->K != JsonValue::Kind::Object)
      return false;
    for (const auto &[Name, Value] : Map->Object) {
      if (Value.K != JsonValue::Kind::Number)
        return false;
      Out[{"", Name}] = Value.Number;
    }
  }
  return true;
}

bool loadJsonLines(const std::string &Text, MetricTable &Out) {
  std::istringstream Stream(Text);
  std::string Line;
  bool Any = false;
  while (std::getline(Stream, Line)) {
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    JsonValue Record;
    if (!JsonParser(Line).parse(Record) ||
        Record.K != JsonValue::Kind::Object)
      return false;
    const JsonValue *Kind = Record.field("kind");
    const JsonValue *Name = Record.field("name");
    const JsonValue *Value = Record.field("value");
    const JsonValue *Label = Record.field("label");
    if (!Kind || !Name)
      return false;
    Any = true;
    if (Kind->String != "counter" && Kind->String != "gauge")
      continue; // histograms/spans carry timing noise, not baselines
    if (!Value || Value->K != JsonValue::Kind::Number)
      return false;
    Out[{Label ? Label->String : "", Name->String}] = Value->Number;
  }
  return Any;
}

bool loadMetricsFile(const std::string &Path, MetricTable &Out) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream) {
    std::fprintf(stderr, "twpp_metrics_diff: cannot read %s\n", Path.c_str());
    return false;
  }
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  std::string Text = Buffer.str();

  // The single-object export is one multi-line document; everything else
  // is treated as JSON-lines.
  JsonValue Doc;
  if (JsonParser(Text).parse(Doc) && Doc.K == JsonValue::Kind::Object &&
      Doc.field("counters"))
    return loadSingleObject(Doc, Out);
  if (loadJsonLines(Text, Out))
    return true;
  std::fprintf(stderr, "twpp_metrics_diff: %s is not a recognized metrics "
                       "export\n",
               Path.c_str());
  return false;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: twpp_metrics_diff <baseline> <current> [options]\n"
      "  --metric NAME        enforce NAME (repeatable)\n"
      "  --all                enforce every counter/gauge in both files\n"
      "  --threshold-pct P    allowed increase in percent (default 5)\n"
      "  --list               print every matched entry with its delta\n"
      "  --list-metrics       enumerate baseline keys with baseline and\n"
      "                       current values (missing keys marked)\n"
      "exit: 0 ok, 1 regression, 2 usage/parse error\n");
  return twpp::cli::ExitUsage;
}

std::string keyLabel(const MetricKey &Key) {
  return Key.Label.empty() ? Key.Name : Key.Label + " " + Key.Name;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string BaselinePath, CurrentPath;
  std::set<std::string> EnforceNames;
  bool EnforceAll = false, List = false, ListMetrics = false;
  double ThresholdPct = 5.0;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--metric") == 0) {
      if (I + 1 >= Argc)
        return usage();
      EnforceNames.insert(Argv[++I]);
    } else if (std::strcmp(Argv[I], "--threshold-pct") == 0) {
      if (I + 1 >= Argc)
        return usage();
      ThresholdPct = std::atof(Argv[++I]);
    } else if (std::strcmp(Argv[I], "--all") == 0) {
      EnforceAll = true;
    } else if (std::strcmp(Argv[I], "--list") == 0) {
      List = true;
    } else if (std::strcmp(Argv[I], "--list-metrics") == 0) {
      ListMetrics = true;
    } else if (BaselinePath.empty()) {
      BaselinePath = Argv[I];
    } else if (CurrentPath.empty()) {
      CurrentPath = Argv[I];
    } else {
      return usage();
    }
  }
  if (BaselinePath.empty() || CurrentPath.empty())
    return usage();
  if (EnforceNames.empty() && !EnforceAll && !List && !ListMetrics) {
    std::fprintf(stderr, "twpp_metrics_diff: nothing to do — pass --metric, "
                         "--all, --list or --list-metrics\n");
    return usage();
  }

  MetricTable Baseline, Current;
  if (!loadMetricsFile(BaselinePath, Baseline) ||
      !loadMetricsFile(CurrentPath, Current))
    return twpp::cli::ExitUsage;

  // Enumerate what the baseline actually gates before the enforcement
  // pass; keys the current file no longer produces are the interesting
  // ones (a renamed metric silently stops being compared).
  if (ListMetrics) {
    std::printf("%zu baseline key(s) in %s:\n", Baseline.size(),
                BaselinePath.c_str());
    for (const auto &[Key, BaseValue] : Baseline) {
      auto It = Current.find(Key);
      if (It != Current.end())
        std::printf("  %-50s %.0f -> %.0f\n", keyLabel(Key).c_str(),
                    BaseValue, It->second);
      else
        std::printf("  %-50s %.0f -> (missing in current)\n",
                    keyLabel(Key).c_str(), BaseValue);
    }
  }

  // Every enforced name must exist in both files under at least one
  // label, otherwise a typo would silently pass forever.
  std::set<std::string> SeenEnforced;
  int Regressions = 0;
  size_t Matched = 0;
  for (const auto &[Key, BaseValue] : Baseline) {
    auto It = Current.find(Key);
    if (It == Current.end())
      continue;
    ++Matched;
    double CurValue = It->second;
    bool Enforced = EnforceAll || EnforceNames.count(Key.Name) != 0;
    if (EnforceNames.count(Key.Name))
      SeenEnforced.insert(Key.Name);
    double Allowed = BaseValue * (1.0 + ThresholdPct / 100.0);
    bool Regressed = Enforced && CurValue > Allowed &&
                     CurValue > BaseValue; // zero-baseline: any growth fails
    if (Regressed) {
      ++Regressions;
      std::printf("REGRESSION  %-40s %.0f -> %.0f (limit %.0f, +%.1f%%)\n",
                  keyLabel(Key).c_str(), BaseValue, CurValue, Allowed,
                  BaseValue != 0
                      ? (CurValue - BaseValue) / BaseValue * 100.0
                      : 100.0);
    } else if (List || Enforced) {
      std::printf("ok          %-40s %.0f -> %.0f\n", keyLabel(Key).c_str(),
                  BaseValue, CurValue);
    }
  }

  if (Matched == 0) {
    std::fprintf(stderr, "twpp_metrics_diff: no common (label, name) entries "
                         "between the two files\n");
    return twpp::cli::ExitUsage;
  }
  for (const std::string &Name : EnforceNames)
    if (!SeenEnforced.count(Name)) {
      std::fprintf(stderr, "twpp_metrics_diff: metric %s not present in both "
                           "files\n",
                   Name.c_str());
      return twpp::cli::ExitUsage;
    }

  if (Regressions) {
    std::fprintf(stderr, "twpp_metrics_diff: %d metric(s) regressed beyond "
                         "%.1f%%\n",
                 Regressions, ThresholdPct);
    return twpp::cli::ExitFindings;
  }
  return twpp::cli::ExitSuccess;
}
