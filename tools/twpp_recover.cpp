//===- tools/twpp_recover.cpp - Torn-archive salvage CLI ------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Salvages what remains of a damaged TWPP archive (verify/Recover.h):
//
//   twpp_recover damaged.twpp recovered.twpp
//   twpp_recover --format=json damaged.twpp recovered.twpp
//   twpp_recover --report=salvage.json damaged.twpp recovered.twpp
//
// The index layout makes every function block an independent extent, so
// salvage keeps each block that decodes and passes the verifier's
// per-table checks, splices dropped functions out of the dynamic call
// graph, rewrites a fresh archive and re-verifies it end to end before
// declaring success. The output is either verifier-clean or absent.
//
//   --format=FMT    report format on stdout: text (default) or json
//   --report=FILE   additionally write the JSON report to FILE (for CI
//                   artifacts), whatever --format says
//
// Exit codes: 0 a verifier-clean archive was written (possibly with
// data loss — see the report), 1 the archive cannot be salvaged (the
// report names why), 2 usage or IO failure — the same contract as
// twpp_verify.
//
//===----------------------------------------------------------------------===//

#include "support/CliCommon.h"
#include "support/FileIO.h"
#include "verify/Recover.h"
#include "wpp/Archive.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace twpp;
using namespace twpp::recover;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: twpp_recover [options] damaged.twpp recovered.twpp\n"
      "  --format=FMT    stdout report format: text (default) or json\n"
      "  --io=MODE       archive read path: mmap (default) or buffered\n"
      "  --report=FILE   also write the JSON report to FILE\n"
      "exit codes: 0 salvaged (verifier-clean output written), 1 cannot\n"
      "salvage (report names why), 2 usage/IO error\n");
  return cli::ExitUsage;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Format = "text";
  std::string ReportPath;
  std::vector<std::string> Paths;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    switch (cli::parseCommonFlag(Arg, Format)) {
    case cli::FlagParse::Ok:
      continue;
    case cli::FlagParse::Bad:
      return usage();
    case cli::FlagParse::NoMatch:
      break;
    }
    if (Arg.rfind("--report=", 0) == 0) {
      ReportPath = Arg.substr(9);
    } else if (Arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.size() != 2)
    return usage();

  std::vector<uint8_t> Bytes;
  IoError Read = readFileBytes(Paths[0], Bytes);
  if (!Read) {
    std::fprintf(stderr, "twpp_recover: %s\n", Read.message().c_str());
    return cli::ExitUsage;
  }

  std::vector<uint8_t> Out;
  SalvageReport Report;
  salvageArchive(Bytes, Out, Report);

  std::string Rendered = Format == "json" ? renderSalvageReportJson(Report)
                                          : renderSalvageReportText(Report);
  std::fputs(Rendered.c_str(), stdout);
  if (!ReportPath.empty()) {
    std::vector<uint8_t> Json;
    std::string JsonText = renderSalvageReportJson(Report);
    Json.assign(JsonText.begin(), JsonText.end());
    IoError Write = writeFileBytes(ReportPath, Json);
    if (!Write) {
      std::fprintf(stderr, "twpp_recover: %s\n", Write.message().c_str());
      return cli::ExitUsage;
    }
  }
  if (!Report.Salvaged)
    return cli::ExitFindings;

  IoError Write = writeFileBytesAtomic(Paths[1], Out);
  if (!Write) {
    std::fprintf(stderr, "twpp_recover: %s\n", Write.message().c_str());
    return cli::ExitUsage;
  }
  return cli::ExitSuccess;
}
