//===- tools/twpp_races.cpp - Data race detector CLI ----------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Detects data races in thread-aware (version 2) TWPP archives by
// analyzing the compacted representation directly — the happens-before
// engine walks run-compressed access sets against constant-clock
// segments and never expands the trace:
//
//   twpp_races out.twpp
//   twpp_races --engine=both --format=json out.twpp
//
//   --engine=E    compacted (default), oracle (decompress-and-check
//                 baseline), or both (run the two differentially; any
//                 disagreement is reported and exits 2)
//   --format=FMT  text (default) or json (schema twpp-races-v1)
//   --io=MODE     archive read path: mmap (default) or buffered
//
// Exit codes: 0 no races, 1 races found, 2 usage/IO error or engine
// mismatch — the same contract as twpp_verify.
//
//===----------------------------------------------------------------------===//

#include "races/RaceDetect.h"
#include "support/CliCommon.h"
#include "wpp/Archive.h"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

using namespace twpp;
using namespace twpp::races;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: twpp_races [options] archive.twpp...\n"
      "  --engine=E    compacted (default), oracle, or both (differential)\n"
      "  --format=FMT  output format: text (default) or json\n"
      "  --io=MODE     archive read path: mmap (default) or buffered\n"
      "exit codes: 0 race-free, 1 races found, 2 usage/IO/engine mismatch\n");
  return cli::ExitUsage;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

void renderRacesJson(std::string &Out, const RaceReport &Report) {
  Out += "\"races\": [";
  for (size_t I = 0; I != Report.Races.size(); ++I) {
    const RacePair &R = Report.Races[I];
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"addr\": \"0x%" PRIx64 "\", \"threadA\": %u, "
                  "\"threadB\": %u, \"timeA\": %u, \"timeB\": %u, "
                  "\"kindA\": \"%c\", \"kindB\": \"%c\", \"pairs\": %" PRIu64
                  "}",
                  I ? ", " : "", R.Addr, R.ThreadA, R.ThreadB, R.TimeA,
                  R.TimeB, R.KindA == 0 ? 'W' : 'R', R.KindB == 0 ? 'W' : 'R',
                  R.PairCount);
    Out += Buf;
  }
  Out += "]";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Engine = "compacted";
  std::string Format = "text";
  std::vector<std::string> Archives;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    switch (cli::parseCommonFlag(Arg, Format)) {
    case cli::FlagParse::Ok:
      continue;
    case cli::FlagParse::Bad:
      return usage();
    case cli::FlagParse::NoMatch:
      break;
    }
    if (Arg.rfind("--engine=", 0) == 0) {
      Engine = Arg.substr(9);
      if (Engine != "compacted" && Engine != "oracle" && Engine != "both")
        return usage();
    } else if (Arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      Archives.push_back(Arg);
    }
  }
  if (Archives.empty())
    return usage();

  bool AnyRaces = false;
  bool Mismatch = false;
  std::string Json = "{\"schema\": \"twpp-races-v1\", \"archives\": [";

  for (size_t A = 0; A != Archives.size(); ++A) {
    const std::string &Path = Archives[A];
    ArchiveReader Reader;
    ConcurrencyInfo Conc;
    if (!Reader.open(Path) || !Reader.readConcurrency(Conc)) {
      const verify::Diagnostic &D = Reader.lastError();
      std::fprintf(stderr, "twpp_races: %s: [%s] %s (%s)\n", Path.c_str(),
                   D.CheckId.c_str(), D.Message.c_str(), D.Location.c_str());
      return cli::ExitUsage;
    }

    RaceReport Report = Engine == "oracle" ? detectRacesOracle(Conc)
                                           : detectRacesCompacted(Conc);
    bool Agree = true;
    if (Engine == "both") {
      RaceReport Oracle = detectRacesOracle(Conc);
      Agree = sameVerdict(Report, Oracle);
      if (!Agree) {
        Mismatch = true;
        std::fprintf(stderr,
                     "twpp_races: %s: compacted and oracle engines disagree\n"
                     "--- compacted ---\n%s--- oracle ---\n%s",
                     Path.c_str(), renderRaceLines(Report).c_str(),
                     renderRaceLines(Oracle).c_str());
      }
    }
    AnyRaces |= Report.racy();

    if (Format == "json") {
      char Buf[512];
      std::snprintf(
          Buf, sizeof(Buf),
          "%s{\"path\": \"%s\", \"engine\": \"%s\", \"threads\": %zu, "
          "\"edges\": %zu, \"verdict\": \"%s\", ",
          A ? ", " : "", jsonEscape(Path).c_str(), Engine.c_str(),
          Conc.Threads.size(), Conc.Edges.size(),
          Report.racy() ? "racy" : "race-free");
      Json += Buf;
      renderRacesJson(Json, Report);
      std::snprintf(Buf, sizeof(Buf),
                    ", \"stats\": {\"pairsCovered\": %" PRIu64
                    ", \"segments\": %" PRIu64 ", \"segmentPairs\": %" PRIu64
                    ", \"racyPairs\": %" PRIu64 "}",
                    Report.Stats.PairsCovered, Report.Stats.Segments,
                    Report.Stats.SegmentPairs, Report.Stats.RacyPairs);
      Json += Buf;
      if (Engine == "both")
        Json += Agree ? ", \"enginesAgree\": true"
                      : ", \"enginesAgree\": false";
      Json += "}";
    } else {
      std::printf("%s: %s (%zu threads, %zu hb edges, engine %s)\n",
                  Path.c_str(), Report.racy() ? "RACY" : "race-free",
                  Conc.Threads.size(), Conc.Edges.size(), Engine.c_str());
      std::fputs(renderRaceLines(Report).c_str(), stdout);
      std::printf("  pairs covered %" PRIu64 ", racy pairs %" PRIu64
                  ", segments %" PRIu64 "\n",
                  Report.Stats.PairsCovered, Report.Stats.RacyPairs,
                  Report.Stats.Segments);
    }
  }

  if (Format == "json") {
    Json += "]}\n";
    std::fputs(Json.c_str(), stdout);
  }
  if (Mismatch)
    return cli::ExitUsage;
  return AnyRaces ? cli::ExitFindings : cli::ExitSuccess;
}
