//===- tools/twpp_memstat.cpp - Archive memory statistics -----------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Reports where an archive's bytes live, per function and per section:
// compressed (on-disk block) bytes vs decoded (in-memory obs::deepSize)
// bytes vs the paper-model wpp/Sizes serialized estimate, with the top-N
// offenders by decoded footprint. Every run also reconciles the
// allocation tracker against the deep-size audit — the same invariant the
// twpp-mem-reconcile verifier check enforces — so a drifting decoder
// fails the tool, not just the verifier.
//
//   twpp_memstat out.twpp
//   twpp_memstat --top=5 --format=json --out memstat.json out.twpp
//
//   --top=N       functions to list, largest decoded first (default 10)
//   --format=FMT  text (default) or json (schema twpp-memstat-v1)
//   --out FILE    write the report to FILE instead of stdout
//
// Exit codes: 0 reconciled, 1 tracker vs deepSize beyond the 1% + 1 KiB
// tolerance, 2 usage or IO failure — the twpp_metrics_diff contract.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "support/CliCommon.h"
#include "obs/Memory.h"
#include "verify/MemoryChecks.h"
#include "wpp/Archive.h"
#include "wpp/DeepSize.h"
#include "wpp/Sizes.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

using namespace twpp;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: twpp_memstat [options] archive.twpp...\n"
      "  --top=N       functions to list, largest decoded first "
      "(default 10)\n"
      "  --format=FMT  output format: text (default) or json\n"
      "  --io=MODE     archive read path: mmap (default) or buffered\n"
      "  --out FILE    write the report to FILE instead of stdout\n"
      "exit codes: 0 reconciled, 1 tracker vs deep-size audit beyond\n"
      "tolerance, 2 usage/IO error\n");
  return cli::ExitUsage;
}

struct FunctionStat {
  uint32_t Function = 0;
  uint64_t Calls = 0;
  uint64_t CompressedBytes = 0;
  uint64_t DecodedBytes = 0;
  uint64_t ModelBytes = 0;
};

struct ArchiveStat {
  std::string Path;
  uint64_t FileBytes = 0;
  uint64_t HeaderIndexBytes = 0;
  uint64_t DcgCompressedBytes = 0;
  uint64_t DcgDecodedBytes = 0;
  std::vector<FunctionStat> Functions; // sorted by DecodedBytes descending
  verify::MemoryAudit Audit;
  bool Reconciled = true;
};

uint64_t modelBytes(const TwppFunctionTable &Table) {
  uint64_t Bytes = 0;
  for (const TwppTrace &Trace : Table.TraceStrings)
    Bytes += twppTraceBytes(Trace);
  for (const DbbDictionary &Dict : Table.Dictionaries)
    Bytes += dictionaryBytes(Dict);
  return Bytes;
}

bool collect(const std::string &Path, ArchiveStat &Stat) {
  Stat.Path = Path;
  TwppWpp Wpp;
  if (!verify::auditArchiveMemory(Path, Stat.Audit, &Wpp))
    return false;

  ArchiveReader Reader;
  if (!Reader.open(Path))
    return false;

  std::error_code Ec;
  Stat.FileBytes = std::filesystem::file_size(Path, Ec);
  if (Ec)
    Stat.FileBytes = 0;
  // Archive layout (wpp/Archive.h): 12-byte prefix + 16 DCG fields +
  // 24-byte index rows.
  Stat.HeaderIndexBytes = 12 + 16 + 24ull * Reader.functionCount();
  Stat.DcgCompressedBytes = Reader.dcgLength();
  Stat.DcgDecodedBytes = obs::deepSize(Wpp.Dcg);

  Stat.Functions.resize(Wpp.Functions.size());
  for (uint32_t F = 0; F < Wpp.Functions.size(); ++F) {
    FunctionStat &Fn = Stat.Functions[F];
    Fn.Function = F;
    Fn.Calls = Reader.callCount(F);
    Fn.CompressedBytes = Reader.blockLength(F);
    Fn.DecodedBytes = obs::deepSize(Wpp.Functions[F]);
    Fn.ModelBytes = modelBytes(Wpp.Functions[F]);
  }
  std::stable_sort(Stat.Functions.begin(), Stat.Functions.end(),
                   [](const FunctionStat &A, const FunctionStat &B) {
                     return A.DecodedBytes > B.DecodedBytes;
                   });

  if (obs::memTrackingCompiled()) {
    uint64_t Delta = Stat.Audit.TrackedBytes > Stat.Audit.DeepBytes
                         ? Stat.Audit.TrackedBytes - Stat.Audit.DeepBytes
                         : Stat.Audit.DeepBytes - Stat.Audit.TrackedBytes;
    Stat.Reconciled =
        Delta <= verify::memReconcileToleranceBytes(Stat.Audit.DeepBytes);
  }
  return true;
}

void renderText(const std::vector<ArchiveStat> &Stats, size_t Top,
                std::string &Out) {
  char Line[256];
  for (const ArchiveStat &Stat : Stats) {
    std::snprintf(Line, sizeof(Line), "%s\n", Stat.Path.c_str());
    Out += Line;
    std::snprintf(Line, sizeof(Line),
                  "  file %llu bytes (header+index %llu, dcg %llu)\n",
                  (unsigned long long)Stat.FileBytes,
                  (unsigned long long)Stat.HeaderIndexBytes,
                  (unsigned long long)Stat.DcgCompressedBytes);
    Out += Line;
    uint64_t Compressed = 0, Decoded = 0, Model = 0;
    for (const FunctionStat &Fn : Stat.Functions) {
      Compressed += Fn.CompressedBytes;
      Decoded += Fn.DecodedBytes;
      Model += Fn.ModelBytes;
    }
    std::snprintf(Line, sizeof(Line),
                  "  functions: compressed %llu, decoded %llu, "
                  "paper-model %llu bytes\n",
                  (unsigned long long)Compressed, (unsigned long long)Decoded,
                  (unsigned long long)Model);
    Out += Line;
    std::snprintf(Line, sizeof(Line),
                  "  dcg: compressed %llu, decoded %llu bytes\n",
                  (unsigned long long)Stat.DcgCompressedBytes,
                  (unsigned long long)Stat.DcgDecodedBytes);
    Out += Line;
    std::snprintf(
        Line, sizeof(Line),
        "  audit: tracked %llu vs deep-size %llu bytes (%s)\n",
        (unsigned long long)Stat.Audit.TrackedBytes,
        (unsigned long long)Stat.Audit.DeepBytes,
        !obs::memTrackingCompiled() ? "tracking compiled out, skipped"
        : Stat.Reconciled           ? "reconciled"
                                    : "RECONCILE FAILED");
    Out += Line;
    Out += "  top functions by decoded bytes:\n";
    std::snprintf(Line, sizeof(Line), "    %-10s %-12s %-12s %-12s %s\n",
                  "function", "compressed", "decoded", "model", "calls");
    Out += Line;
    for (size_t I = 0; I < Stat.Functions.size() && I < Top; ++I) {
      const FunctionStat &Fn = Stat.Functions[I];
      std::snprintf(Line, sizeof(Line),
                    "    %-10u %-12llu %-12llu %-12llu %llu\n", Fn.Function,
                    (unsigned long long)Fn.CompressedBytes,
                    (unsigned long long)Fn.DecodedBytes,
                    (unsigned long long)Fn.ModelBytes,
                    (unsigned long long)Fn.Calls);
      Out += Line;
    }
  }
}

void renderJson(const std::vector<ArchiveStat> &Stats, size_t Top,
                std::string &Out) {
  auto U64 = [](uint64_t Value) { return std::to_string(Value); };
  Out += "{\"schema\": \"twpp-memstat-v1\", \"archives\": [";
  for (size_t A = 0; A < Stats.size(); ++A) {
    const ArchiveStat &Stat = Stats[A];
    if (A)
      Out += ", ";
    Out += "{\"path\": " + obs::jsonStringLiteral(Stat.Path);
    Out += ", \"file_bytes\": " + U64(Stat.FileBytes);
    Out += ", \"header_index_bytes\": " + U64(Stat.HeaderIndexBytes);
    Out += ", \"dcg\": {\"compressed_bytes\": " +
           U64(Stat.DcgCompressedBytes) +
           ", \"decoded_bytes\": " + U64(Stat.DcgDecodedBytes) + "}";
    Out += ", \"audit\": {\"tracked_bytes\": " +
           U64(Stat.Audit.TrackedBytes) +
           ", \"deep_bytes\": " + U64(Stat.Audit.DeepBytes) +
           ", \"model_bytes\": " + U64(Stat.Audit.ModelBytes) +
           ", \"tracking_compiled\": " +
           (obs::memTrackingCompiled() ? "true" : "false") +
           ", \"reconciled\": " + (Stat.Reconciled ? "true" : "false") + "}";
    Out += ", \"functions\": [";
    for (size_t I = 0; I < Stat.Functions.size() && I < Top; ++I) {
      const FunctionStat &Fn = Stat.Functions[I];
      if (I)
        Out += ", ";
      Out += "{\"function\": " + U64(Fn.Function) +
             ", \"compressed_bytes\": " + U64(Fn.CompressedBytes) +
             ", \"decoded_bytes\": " + U64(Fn.DecodedBytes) +
             ", \"model_bytes\": " + U64(Fn.ModelBytes) +
             ", \"calls\": " + U64(Fn.Calls) + "}";
    }
    Out += "]}";
  }
  Out += "]}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Top = 10;
  std::string Format = "text";
  std::string OutPath;
  std::vector<std::string> Archives;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    switch (cli::parseCommonFlag(Arg, Format)) {
    case cli::FlagParse::Ok:
      continue;
    case cli::FlagParse::Bad:
      return usage();
    case cli::FlagParse::NoMatch:
      break;
    }
    if (Arg.rfind("--top=", 0) == 0) {
      Top = static_cast<size_t>(std::strtoull(Arg.c_str() + 6, nullptr, 10));
      if (Top == 0)
        return usage();
    } else if (Arg == "--out") {
      if (++I >= Argc)
        return usage();
      OutPath = Argv[I];
    } else if (Arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      Archives.push_back(Arg);
    }
  }
  if (Archives.empty())
    return usage();

  std::vector<ArchiveStat> Stats;
  for (const std::string &Path : Archives) {
    ArchiveStat Stat;
    if (!collect(Path, Stat)) {
      std::fprintf(stderr, "twpp_memstat: cannot read %s\n", Path.c_str());
      return cli::ExitUsage;
    }
    Stats.push_back(std::move(Stat));
  }

  std::string Out;
  if (Format == "json")
    renderJson(Stats, Top, Out);
  else
    renderText(Stats, Top, Out);

  if (OutPath.empty()) {
    std::fputs(Out.c_str(), stdout);
  } else {
    std::FILE *File = std::fopen(OutPath.c_str(), "w");
    if (!File) {
      std::fprintf(stderr, "twpp_memstat: cannot write %s\n",
                   OutPath.c_str());
      return cli::ExitUsage;
    }
    std::fputs(Out.c_str(), File);
    std::fclose(File);
  }

  for (const ArchiveStat &Stat : Stats)
    if (!Stat.Reconciled) {
      std::fprintf(stderr,
                   "twpp_memstat: %s: tracker vs deep-size audit beyond "
                   "tolerance\n",
                   Stat.Path.c_str());
      return cli::ExitFindings;
    }
  return cli::ExitSuccess;
}
