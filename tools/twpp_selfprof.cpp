//===- tools/twpp_selfprof.cpp - Self-profile archive reporter ------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Reports on a self-profile archive (obs/SelfProfile.h): the pipeline's
// own execution, compacted as TWPP. Functions are span paths, block 1 is
// the call marker, higher blocks are log2-bucketed exclusive-time gaps —
// the sidecar (<archive>.meta) carries both maps, so every figure here is
// computed purely from the archive's path traces and timestamps.
//
//   twpp_selfprof run.twppa
//   twpp_selfprof --top=3 --format=collapsed --out profile.folded run.twppa
//
//   --meta FILE   sidecar path (default: <archive>.meta)
//   --top=N       hot paths / functions per listing (default 5)
//   --format=FMT  text (default), collapsed (flamegraph folded
//                 stacks: "a;b;c <exclusive_us>"), or json
//   --io=MODE     archive read path: mmap (default) or buffered
//   --out FILE    write the report to FILE instead of stdout
//
// Exit codes: 0 ok, 1 sidecar and archive disagree (function counts),
// 2 usage or IO failure — the twpp_metrics_diff contract.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/SelfProfile.h"
#include "support/CliCommon.h"
#include "wpp/Archive.h"
#include "wpp/HotPaths.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

using namespace twpp;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: twpp_selfprof [options] archive.twppa\n"
      "  --meta FILE   sidecar path (default: <archive>.meta)\n"
      "  --top=N       hot paths / functions per listing (default 5)\n"
      "  --format=FMT  text (default), collapsed, or json\n"
      "  --io=MODE     archive read path: mmap (default) or buffered\n"
      "  --out FILE    write the report to FILE instead of stdout\n"
      "exit codes: 0 ok, 1 sidecar/archive mismatch, 2 usage/IO error\n");
  return cli::ExitUsage;
}

/// One span path's aggregate, from its function block alone.
struct FunctionReport {
  FunctionId Function = 0;
  std::string Path;
  uint64_t Calls = 0;
  uint64_t ExclusiveNs = 0;
  uint64_t InclusiveNs = 0; ///< Path-prefix sum over every function.
  std::vector<HotPath> Hot; ///< Ranked by use count (wpp/HotPaths).
};

/// One ranked acyclic path with its reconstructed duration.
struct RankedPath {
  const FunctionReport *Fn = nullptr;
  const HotPath *Path = nullptr;
  uint64_t PathNs = 0;
};

struct StageReport {
  std::string Name; ///< First path component ("compact", "(detached)").
  uint64_t ExclusiveNs = 0;
  uint64_t Calls = 0;
  std::vector<RankedPath> Hot; ///< Use-count ranked across the stage.
};

std::string stageOf(const std::string &Path) {
  size_t Slash = Path.find('/');
  return Slash == std::string::npos ? Path : Path.substr(0, Slash);
}

std::string formatNs(uint64_t Ns) {
  char Buf[32];
  if (Ns >= 1000000000ull)
    std::snprintf(Buf, sizeof(Buf), "%.2fs", double(Ns) / 1e9);
  else if (Ns >= 1000000ull)
    std::snprintf(Buf, sizeof(Buf), "%.2fms", double(Ns) / 1e6);
  else if (Ns >= 1000ull)
    std::snprintf(Buf, sizeof(Buf), "%.1fus", double(Ns) / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%lluns", (unsigned long long)Ns);
  return Buf;
}

/// "[@ 2us 512ns ...]" — the block pattern of one acyclic path, call
/// markers as '@', gaps by their representative duration.
std::string describeBlocks(const PathTrace &Blocks,
                           const std::unordered_map<BlockId, uint64_t> &GapNs,
                           size_t MaxBlocks = 8) {
  std::string Out = "[";
  for (size_t I = 0; I < Blocks.size(); ++I) {
    if (I == MaxBlocks) {
      Out += " ...";
      break;
    }
    if (I)
      Out += " ";
    if (Blocks[I] == obs::selfprof::CallMarkerBlock) {
      Out += "@";
    } else if (auto It = GapNs.find(Blocks[I]); It != GapNs.end()) {
      Out += formatNs(It->second);
    } else {
      Out += "b";
      Out += std::to_string(Blocks[I]);
    }
  }
  Out += "]";
  return Out;
}

void renderText(const std::string &ArchivePath, const obs::SelfProfileMeta &M,
                const std::vector<FunctionReport> &Functions,
                const std::vector<StageReport> &Stages,
                const std::unordered_map<BlockId, uint64_t> &GapNs,
                size_t Top, std::string &Out) {
  char Line[512];
  std::snprintf(Line, sizeof(Line), "self-profile: %s\n",
                ArchivePath.c_str());
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "  functions %llu, spans %llu, events %llu, records "
                "dropped %llu\n",
                (unsigned long long)M.Stats.Functions,
                (unsigned long long)M.Stats.Spans,
                (unsigned long long)M.Stats.Events,
                (unsigned long long)M.Stats.RecordsDropped);
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "  truncated %llu, unclosed %llu, orphan flows %llu, "
                "registry overflows %llu\n",
                (unsigned long long)M.Stats.TruncatedSpans,
                (unsigned long long)M.Stats.UnclosedSpans,
                (unsigned long long)M.Stats.OrphanFlows,
                (unsigned long long)M.Stats.RegistryOverflows);
  Out += Line;
  if (M.Stats.TraceJsonBytes != 0 && M.Stats.ArchiveBytes != 0) {
    std::snprintf(Line, sizeof(Line),
                  "  archive %llu bytes vs chrome-trace json %llu bytes "
                  "(%.1fx smaller)\n",
                  (unsigned long long)M.Stats.ArchiveBytes,
                  (unsigned long long)M.Stats.TraceJsonBytes,
                  double(M.Stats.TraceJsonBytes) /
                      double(M.Stats.ArchiveBytes));
    Out += Line;
  }

  Out += "stages (exclusive time):\n";
  for (const StageReport &S : Stages) {
    std::snprintf(Line, sizeof(Line), "  %-24s %10s  (calls %llu)\n",
                  S.Name.c_str(), formatNs(S.ExclusiveNs).c_str(),
                  (unsigned long long)S.Calls);
    Out += Line;
  }

  Out += "hottest functions (by exclusive time):\n";
  std::snprintf(Line, sizeof(Line), "  %-40s %8s %10s %10s\n", "span path",
                "calls", "excl", "incl");
  Out += Line;
  std::vector<const FunctionReport *> ByExclusive;
  for (const FunctionReport &Fn : Functions)
    if (Fn.Calls != 0)
      ByExclusive.push_back(&Fn);
  std::stable_sort(ByExclusive.begin(), ByExclusive.end(),
                   [](const FunctionReport *A, const FunctionReport *B) {
                     return A->ExclusiveNs > B->ExclusiveNs;
                   });
  for (size_t I = 0; I < ByExclusive.size() && I < Top; ++I) {
    const FunctionReport &Fn = *ByExclusive[I];
    std::snprintf(Line, sizeof(Line), "  %-40s %8llu %10s %10s\n",
                  Fn.Path.c_str(), (unsigned long long)Fn.Calls,
                  formatNs(Fn.ExclusiveNs).c_str(),
                  formatNs(Fn.InclusiveNs).c_str());
    Out += Line;
  }

  Out += "hottest acyclic paths per stage:\n";
  for (const StageReport &S : Stages) {
    std::snprintf(Line, sizeof(Line), "  stage %s:\n", S.Name.c_str());
    Out += Line;
    for (size_t I = 0; I < S.Hot.size() && I < Top; ++I) {
      const RankedPath &R = S.Hot[I];
      std::snprintf(Line, sizeof(Line), "    %2zu. %-36s x%-8llu %10s  %s\n",
                    I + 1, R.Fn->Path.c_str(),
                    (unsigned long long)R.Path->UseCount,
                    formatNs(R.PathNs).c_str(),
                    describeBlocks(R.Path->Blocks, GapNs).c_str());
      Out += Line;
    }
  }
}

void renderCollapsed(const std::vector<FunctionReport> &Functions,
                     std::string &Out) {
  // Folded-stack format: "frame;frame;frame <value>", one line per
  // stack, value = exclusive microseconds. Function ids are full span
  // paths, so '/' -> ';' is the entire conversion.
  for (const FunctionReport &Fn : Functions) {
    if (Fn.Calls == 0 || Fn.Path == "(overflow)")
      continue;
    std::string Frames = Fn.Path;
    std::replace(Frames.begin(), Frames.end(), '/', ';');
    Out += Frames + " " + std::to_string(Fn.ExclusiveNs / 1000) + "\n";
  }
}

void renderJson(const std::string &ArchivePath, const obs::SelfProfileMeta &M,
                const std::vector<FunctionReport> &Functions,
                const std::vector<StageReport> &Stages, size_t Top,
                std::string &Out) {
  auto U64 = [](uint64_t Value) { return std::to_string(Value); };
  Out += "{\"schema\": \"twpp-selfprof-v1\", \"archive\": " +
         obs::jsonStringLiteral(ArchivePath);
  Out += ", \"stats\": {\"functions\": " + U64(M.Stats.Functions) +
         ", \"spans\": " + U64(M.Stats.Spans) +
         ", \"events\": " + U64(M.Stats.Events) +
         ", \"records_dropped\": " + U64(M.Stats.RecordsDropped) +
         ", \"truncated_spans\": " + U64(M.Stats.TruncatedSpans) +
         ", \"unclosed_spans\": " + U64(M.Stats.UnclosedSpans) +
         ", \"orphan_flows\": " + U64(M.Stats.OrphanFlows) +
         ", \"archive_bytes\": " + U64(M.Stats.ArchiveBytes) +
         ", \"trace_json_bytes\": " + U64(M.Stats.TraceJsonBytes) + "}";
  Out += ", \"stages\": [";
  for (size_t I = 0; I < Stages.size(); ++I) {
    const StageReport &S = Stages[I];
    if (I)
      Out += ", ";
    Out += "{\"stage\": " + obs::jsonStringLiteral(S.Name) +
           ", \"exclusive_ns\": " + U64(S.ExclusiveNs) +
           ", \"calls\": " + U64(S.Calls) + ", \"hot_paths\": [";
    for (size_t P = 0; P < S.Hot.size() && P < Top; ++P) {
      const RankedPath &R = S.Hot[P];
      if (P)
        Out += ", ";
      Out += "{\"path\": " + obs::jsonStringLiteral(R.Fn->Path) +
             ", \"use_count\": " + U64(R.Path->UseCount) +
             ", \"path_ns\": " + U64(R.PathNs) + ", \"blocks\": [";
      for (size_t B = 0; B < R.Path->Blocks.size(); ++B) {
        if (B)
          Out += ", ";
        Out += U64(R.Path->Blocks[B]);
      }
      Out += "]}";
    }
    Out += "]}";
  }
  Out += "], \"functions\": [";
  bool First = true;
  for (const FunctionReport &Fn : Functions) {
    if (Fn.Calls == 0)
      continue;
    if (!First)
      Out += ", ";
    First = false;
    Out += "{\"function\": " + U64(Fn.Function) +
           ", \"path\": " + obs::jsonStringLiteral(Fn.Path) +
           ", \"calls\": " + U64(Fn.Calls) +
           ", \"exclusive_ns\": " + U64(Fn.ExclusiveNs) +
           ", \"inclusive_ns\": " + U64(Fn.InclusiveNs) + "}";
  }
  Out += "]}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Top = 5;
  std::string Format = "text";
  std::string MetaPath;
  std::string OutPath;
  std::string ArchivePath;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    switch (cli::parseCommonFlag(Arg, Format, {"text", "collapsed", "json"})) {
    case cli::FlagParse::Ok:
      continue;
    case cli::FlagParse::Bad:
      return usage();
    case cli::FlagParse::NoMatch:
      break;
    }
    if (Arg.rfind("--top=", 0) == 0) {
      Top = static_cast<size_t>(std::strtoull(Arg.c_str() + 6, nullptr, 10));
      if (Top == 0)
        return usage();
    } else if (Arg == "--meta") {
      if (++I >= Argc)
        return usage();
      MetaPath = Argv[I];
    } else if (Arg == "--out") {
      if (++I >= Argc)
        return usage();
      OutPath = Argv[I];
    } else if (Arg.rfind("--", 0) == 0) {
      return usage();
    } else if (ArchivePath.empty()) {
      ArchivePath = Arg;
    } else {
      return usage();
    }
  }
  if (ArchivePath.empty())
    return usage();
  if (MetaPath.empty())
    MetaPath = ArchivePath + ".meta";

  obs::SelfProfileMeta Meta;
  if (!obs::readSelfProfileMetaFile(MetaPath, Meta)) {
    std::fprintf(stderr, "twpp_selfprof: cannot read sidecar %s\n",
                 MetaPath.c_str());
    return cli::ExitUsage;
  }

  ArchiveReader Reader;
  if (!Reader.open(ArchivePath)) {
    std::fprintf(stderr, "twpp_selfprof: cannot open %s: %s\n",
                 ArchivePath.c_str(), Reader.lastError().Message.c_str());
    return cli::ExitUsage;
  }
  if (Reader.functionCount() != Meta.FunctionPaths.size()) {
    std::fprintf(stderr,
                 "twpp_selfprof: sidecar lists %zu functions but the "
                 "archive holds %u\n",
                 Meta.FunctionPaths.size(), Reader.functionCount());
    return cli::ExitFindings;
  }

  std::unordered_map<BlockId, uint64_t> GapNs;
  for (const auto &[Block, Ns] : Meta.GapBlocks)
    GapNs.emplace(Block, Ns);

  // Per function (span path): expand its unique path traces, turn gap
  // blocks back into nanoseconds, rank its acyclic paths by use count.
  std::vector<FunctionReport> Functions(Reader.functionCount());
  for (FunctionId F = 0; F < Reader.functionCount(); ++F) {
    FunctionReport &Fn = Functions[F];
    Fn.Function = F;
    Fn.Path = Meta.FunctionPaths[F];
    if (Reader.callCount(F) == 0)
      continue;
    TwppFunctionTable Table;
    if (!Reader.extractFunction(F, Table)) {
      std::fprintf(stderr, "twpp_selfprof: cannot extract function %u: %s\n",
                   F, Reader.lastError().Message.c_str());
      return cli::ExitUsage;
    }
    FunctionPathTraces Expanded = expandFunctionTraces(Table);
    Fn.Calls = Expanded.CallCount;
    for (size_t T = 0; T < Expanded.Traces.size(); ++T) {
      uint64_t TraceNs = 0;
      for (BlockId B : Expanded.Traces[T]) {
        auto It = GapNs.find(B);
        if (It != GapNs.end())
          TraceNs += It->second;
      }
      uint64_t Uses =
          T < Expanded.UseCounts.size() ? Expanded.UseCounts[T] : 0;
      Fn.ExclusiveNs += TraceNs * Uses;
    }
    Fn.Hot = hotPathsOf(Table, Top);
  }

  // Inclusive time falls out of the path-as-function encoding: a span's
  // subtree is exactly the functions whose path it prefixes.
  for (FunctionReport &Fn : Functions) {
    if (Fn.Path == "(overflow)") {
      Fn.InclusiveNs = Fn.ExclusiveNs;
      continue;
    }
    std::string Prefix = Fn.Path + "/";
    for (const FunctionReport &Other : Functions)
      if (Other.Path == Fn.Path ||
          Other.Path.compare(0, Prefix.size(), Prefix) == 0)
        Fn.InclusiveNs += Other.ExclusiveNs;
  }

  // Per pipeline stage (first path component): exclusive totals and the
  // stage-wide use-count ranking of acyclic paths.
  std::map<std::string, StageReport> StageMap;
  for (const FunctionReport &Fn : Functions) {
    if (Fn.Calls == 0)
      continue;
    StageReport &S = StageMap[stageOf(Fn.Path)];
    S.Name = stageOf(Fn.Path);
    S.ExclusiveNs += Fn.ExclusiveNs;
    S.Calls += Fn.Calls;
    for (const HotPath &H : Fn.Hot) {
      uint64_t PathNs = 0;
      for (BlockId B : H.Blocks) {
        auto It = GapNs.find(B);
        if (It != GapNs.end())
          PathNs += It->second;
      }
      S.Hot.push_back(RankedPath{&Fn, &H, PathNs});
    }
  }
  std::vector<StageReport> Stages;
  for (auto &[Name, S] : StageMap) {
    std::stable_sort(S.Hot.begin(), S.Hot.end(),
                     [](const RankedPath &A, const RankedPath &B) {
                       return A.Path->UseCount > B.Path->UseCount;
                     });
    Stages.push_back(std::move(S));
  }
  std::stable_sort(Stages.begin(), Stages.end(),
                   [](const StageReport &A, const StageReport &B) {
                     return A.ExclusiveNs > B.ExclusiveNs;
                   });

  std::string Out;
  if (Format == "collapsed")
    renderCollapsed(Functions, Out);
  else if (Format == "json")
    renderJson(ArchivePath, Meta, Functions, Stages, Top, Out);
  else
    renderText(ArchivePath, Meta, Functions, Stages, GapNs, Top, Out);

  if (OutPath.empty()) {
    std::fputs(Out.c_str(), stdout);
  } else {
    std::FILE *File = std::fopen(OutPath.c_str(), "w");
    if (!File) {
      std::fprintf(stderr, "twpp_selfprof: cannot write %s\n",
                   OutPath.c_str());
      return cli::ExitUsage;
    }
    std::fputs(Out.c_str(), File);
    std::fclose(File);
  }
  return cli::ExitSuccess;
}
