//===- examples/quickstart.cpp - End-to-end tour of the library ------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Quickstart: compile a small program in the bundled mini language, run
// it under the tracing interpreter to collect its whole program path,
// compact the WPP into timestamped form, write/reopen the archive, and
// answer the canonical query — "give me every path trace of function f"
// — without touching the rest of the file.
//
// With `--self-profile <out.twppa>` (or the TWPP_SELF_PROFILE environment
// variable) the run additionally compacts its *own* execution into a TWPP
// archive — the library profiling itself with its own representation.
//
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"
#include "obs/SelfProfile.h"
#include "runtime/Interpreter.h"
#include "support/Stats.h"
#include "wpp/Archive.h"
#include "wpp/Sizes.h"

#include <cstdio>
#include <cstring>

using namespace twpp;

int main(int Argc, char **Argv) {
  // Self-profiling: the flag wins over the TWPP_SELF_PROFILE env var.
  bool SelfProfiling = false;
  for (int I = 1; I < Argc; ++I) {
    obs::SelfProfileConfig SelfCfg;
    // Measure the equivalent Chrome-JSON size too: the sidecar then
    // carries the compaction ratio CI asserts.
    SelfCfg.CompareTraceJson = true;
    if (std::strcmp(Argv[I], "--self-profile") == 0 && I + 1 < Argc) {
      SelfCfg.ArchivePath = Argv[++I];
      SelfProfiling = obs::enableSelfProfile(std::move(SelfCfg));
    } else if (std::strncmp(Argv[I], "--self-profile=", 15) == 0) {
      SelfCfg.ArchivePath = Argv[I] + 15;
      SelfProfiling = obs::enableSelfProfile(std::move(SelfCfg));
    }
  }
  if (!SelfProfiling)
    SelfProfiling = obs::maybeEnableSelfProfileFromEnv();
  if (SelfProfiling)
    obs::setCurrentThreadName("main");
  // A miniature program in the spirit of the paper's Figure 1: main's
  // loop calls f five times; f's loop body follows one of two paths.
  const char *Source = R"(
    fn f(mode, n) {
      i = 0;
      acc = 0;
      while (i < n) {
        if (mode > 0) { acc = acc + i; } else { acc = acc - i; }
        i = i + 1;
      }
      return acc;
    }
    fn main() {
      k = 0;
      while (k < 5) {
        r = call f(k % 2, 3);
        print r;
        k = k + 1;
      }
    }
  )";

  Module M;
  std::string Error;
  if (!compileProgram(Source, M, Error)) {
    std::fprintf(stderr, "compile error: %s\n", Error.c_str());
    return 1;
  }

  // 1. Collect the whole program path.
  ExecutionResult Result;
  RawTrace Trace = traceExecution(M, {}, Result);
  if (!Result.Completed) {
    std::fprintf(stderr, "execution failed: %s\n", Result.Error.c_str());
    return 1;
  }
  std::printf("executed %llu basic blocks across %llu calls\n",
              (unsigned long long)Trace.blockEventCount(),
              (unsigned long long)Trace.callCount());

  // 2. Compact: partition + redundancy removal + DBB dictionaries +
  //    timestamped form with series compaction.
  TwppWpp Compacted = compactWpp(Trace);
  PartitionedWpp Partitioned = partitionWpp(Trace);
  StageSizes Sizes = measureStages(Partitioned, applyDbbCompaction(Partitioned),
                                   Compacted);
  std::printf("trace bytes: %llu raw -> %llu deduped -> %llu TWPP\n",
              (unsigned long long)Sizes.OwppTraceBytes,
              (unsigned long long)Sizes.DedupedTraceBytes,
              (unsigned long long)Sizes.TwppTraceBytes);

  // Losslessness is a library invariant, not an accident:
  if (!(reconstructRawTrace(Compacted) == Trace)) {
    std::fprintf(stderr, "reconstruction mismatch!\n");
    return 1;
  }
  std::printf("round trip: reconstructed WPP == original WPP\n");

  // 3. Save as an archive and answer a per-function query from disk.
  const char *Path = "/tmp/twpp_quickstart.twpp";
  if (!writeArchiveFile(Path, Compacted)) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return 1;
  }
  ArchiveReader Reader;
  if (!Reader.open(Path)) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return 1;
  }

  const Function *F = M.findFunction("f");
  FunctionPathTraces Paths;
  Reader.extractFunctionPathTraces(F->Id, Paths);
  std::printf("\nfunction 'f': %llu calls, %zu unique path traces\n",
              (unsigned long long)Paths.CallCount, Paths.Traces.size());
  for (size_t I = 0; I < Paths.Traces.size(); ++I) {
    std::printf("  trace %zu (used %llu times): ", I,
                (unsigned long long)Paths.UseCounts[I]);
    for (BlockId B : Paths.Traces[I])
      std::printf("%u.", B);
    std::printf("\n");
  }
  std::remove(Path);

  if (SelfProfiling) {
    obs::SelfProfileStats Stats;
    std::string SelfError;
    if (!obs::finishSelfProfile(&Stats, &SelfError)) {
      std::fprintf(stderr, "cannot write self-profile: %s\n",
                   SelfError.c_str());
      return 1;
    }
    std::printf("\nself-profile: %llu spans -> %llu events, %llu functions, "
                "%llu archive bytes\n",
                (unsigned long long)Stats.Spans,
                (unsigned long long)Stats.Events,
                (unsigned long long)Stats.Functions,
                (unsigned long long)Stats.ArchiveBytes);
  }
  return 0;
}
