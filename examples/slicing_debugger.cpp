//===- examples/slicing_debugger.cpp - Debugging with dynamic slices -------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// The paper's Section 4.3.2 application: a debugger answering slice
// requests against the TWPP of the execution so far. Uses the paper's
// Figure 10 program; pass a statement number and variable name to slice
// on (defaults: the paper's request, Z at the breakpoint).
//
//   slicing_debugger [stmt] [N|I|J|X|Y|Z] [approach 1|2|3]
//   slicing_debugger bridge    — slice a compiled mini-language program
//                                 through the IR bridge instead
//   slicing_debugger interproc — whole-program slice crossing call
//                                 boundaries (paper Section 4.2's
//                                 interprocedural extension)
//
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"
#include "runtime/Interpreter.h"
#include "slicing/DynamicSlicer.h"
#include "slicing/IrSliceBridge.h"
#include "slicing/WholeProgramSlicer.h"
#include "trace/UncompactedFile.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace twpp;

namespace {

/// Bridge mode: compile, run, and slice a real program end to end.
int runBridgeDemo() {
  const char *Source = R"(
    fn main() {
      read n;
      good = 0;
      noise = 0;
      i = 0;
      while (i < n) {
        read v;
        if (v > 0) { good = good + v; }
        else { noise = noise + 1; }
        i = i + 1;
      }
      print good;   // slice criterion: what fed this value?
      print noise;
    }
  )";
  Module M;
  std::string Error;
  if (!compileProgram(Source, M, Error)) {
    std::fprintf(stderr, "compile error: %s\n", Error.c_str());
    return 1;
  }
  const Function &Main = M.Functions[M.MainId];
  IrSliceProgram Bridge = buildSliceProgram(Main);

  ExecutionResult Result;
  RawTrace Trace = traceExecution(M, {4, 10, -3, 7, -1}, Result);
  if (!Result.Completed) {
    std::fprintf(stderr, "run failed: %s\n", Result.Error.c_str());
    return 1;
  }
  std::vector<std::vector<BlockId>> BlockTraces;
  extractFunctionTraces(Trace, Main.Id, BlockTraces);
  std::vector<BlockId> StmtTrace = Bridge.expandTrace(BlockTraces[0]);
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(StmtTrace);

  // Criterion: the first print's use of 'good', at its executed instance.
  VarId Good = M.internVar("good");
  BlockId Criterion = 0;
  for (BlockId Id = 1; Id <= Bridge.Program.stmtCount(); ++Id)
    if (Bridge.Program.stmt(Id).Label == "print" && Criterion == 0)
      Criterion = Id;
  Timestamp Time = 0;
  for (size_t I = 0; I < StmtTrace.size(); ++I)
    if (StmtTrace[I] == Criterion)
      Time = static_cast<Timestamp>(I + 1);

  SliceResult Slice = sliceApproach3(Bridge.Program, Cfg, Criterion, Good,
                                     Time);
  std::printf("program has %u statement nodes; executed %zu instances\n",
              Bridge.Program.stmtCount(), StmtTrace.size());
  std::printf("slice on 'good' at the first print (t=%u), approach 3:\n",
              Time);
  for (BlockId Id : Slice.Stmts)
    std::printf("  %2u: %s\n", Id, Bridge.Program.stmt(Id).Label.c_str());
  std::printf("(the 'noise' accumulator is correctly excluded; "
              "%llu queries)\n",
              (unsigned long long)Slice.QueriesGenerated);
  return 0;
}

/// Interprocedural mode: the slice crosses from main into the helper
/// that actually produced the value.
int runInterprocDemo() {
  const char *Source = R"(
    fn scale(v, k) {
      r = v * k;
      return r;
    }
    fn unrelated(v) {
      return v + 1000;
    }
    fn main() {
      read x;
      read k;
      s = call scale(x, k);
      w = call unrelated(x);
      print s;    // criterion
      print w;
    }
  )";
  Module M;
  std::string Error;
  if (!compileProgram(Source, M, Error)) {
    std::fprintf(stderr, "compile error: %s\n", Error.c_str());
    return 1;
  }
  ExecutionResult Result;
  RawTrace Raw = traceExecution(M, {6, 7}, Result);
  if (!Result.Completed) {
    std::fprintf(stderr, "run failed: %s\n", Result.Error.c_str());
    return 1;
  }
  WholeProgramTrace Trace = WholeProgramTrace::build(M, Raw);

  // Criterion: the first print in main (prints s).
  int64_t Criterion = -1;
  for (size_t I = 0; I < Trace.instances().size(); ++I) {
    const auto &Inst = Trace.instances()[I];
    if (Inst.Function == M.MainId &&
        Trace.bridgeOf(M.MainId).Program.stmt(Inst.Node).Label == "print") {
      Criterion = static_cast<int64_t>(I);
      break;
    }
  }
  GlobalSliceResult Slice = sliceWholeProgram(
      Trace, M, static_cast<size_t>(Criterion), M.internVar("s"));

  std::printf("whole-program slice on 's' at main's first print:\n");
  for (GlobalNode Node : Slice.Nodes)
    std::printf("  %s / %s\n", M.Functions[Node.Function].Name.c_str(),
                Trace.bridgeOf(Node.Function)
                    .Program.stmt(Node.Node)
                    .Label.c_str());
  std::printf("('unrelated' never appears; %llu queries)\n",
              (unsigned long long)Slice.QueriesGenerated);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1 && std::strcmp(Argv[1], "bridge") == 0)
    return runBridgeDemo();
  if (Argc > 1 && std::strcmp(Argv[1], "interproc") == 0)
    return runInterprocDemo();
  Figure10Program Fig = buildFigure10Program();
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Fig.Trace);

  BlockId Stmt = Fig.Breakpoint;
  VarId Var = Fig.VarZ;
  int Approach = 3;
  if (Argc > 1)
    Stmt = static_cast<BlockId>(std::atoi(Argv[1]));
  if (Argc > 2) {
    const char *Names = "NIJXYZ";
    const char *Hit = std::strchr(Names, Argv[2][0]);
    if (!Hit) {
      std::fprintf(stderr, "unknown variable '%s' (use N I J X Y Z)\n",
                   Argv[2]);
      return 1;
    }
    Var = static_cast<VarId>(Hit - Names);
  }
  if (Argc > 3)
    Approach = std::atoi(Argv[3]);
  if (Stmt == 0 || Stmt > Fig.Program.stmtCount()) {
    std::fprintf(stderr, "statement must be 1..14\n");
    return 1;
  }

  std::printf("program (input N=3, X=-4,3,-2):\n");
  for (BlockId Id = 1; Id <= Fig.Program.stmtCount(); ++Id)
    std::printf("  %2u: %s\n", Id, Fig.Program.stmt(Id).Label.c_str());

  // The slice criterion uses the *last* executed instance of the
  // statement, as a debugger stopped at a breakpoint would.
  size_t Node = Cfg.nodeIndexOf(Stmt);
  if (Node == AnnotatedDynamicCfg::npos ||
      Cfg.Nodes[Node].Times.empty()) {
    std::printf("\nstatement %u never executed; empty slice\n", Stmt);
    return 0;
  }
  Timestamp Time = Cfg.Nodes[Node].Times.max();

  const char *Names = "NIJXYZ";
  std::printf("\nslice on %c at statement %u (instance t=%u), "
              "approach %d:\n",
              Names[Var], Stmt, Time, Approach);

  SliceResult Slice;
  switch (Approach) {
  case 1:
    Slice = sliceApproach1(Fig.Program, Cfg, Stmt, Var);
    break;
  case 2:
    Slice = sliceApproach2(Fig.Program, Cfg, Stmt, Var);
    break;
  default:
    Slice = sliceApproach3(Fig.Program, Cfg, Stmt, Var, Time);
    break;
  }

  for (BlockId Id : Slice.Stmts)
    std::printf("  %2u: %s\n", Id, Fig.Program.stmt(Id).Label.c_str());
  std::printf("(%llu queries over the timestamp-annotated dynamic CFG)\n",
              (unsigned long long)Slice.QueriesGenerated);
  return 0;
}
