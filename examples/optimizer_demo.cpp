//===- examples/optimizer_demo.cpp - Profile-guided optimization -----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// The paper's Section 4.3.1 application, driven end to end from source:
// a loop repeatedly reads a value (the "load"), occasionally overwrites
// it (the "store"), and re-reads it at a hot point. Edge profiles alone
// cannot say how often the re-read is redundant; profile-limited
// analysis over the timestamped WPP computes the exact degree of
// redundancy, which an optimizer would use to decide whether cloning or
// code motion pays off.
//
//===----------------------------------------------------------------------===//

#include "dataflow/AnnotatedCfg.h"
#include "dataflow/IrFacts.h"
#include "dataflow/Query.h"
#include "lang/Lower.h"
#include "runtime/Interpreter.h"
#include "trace/UncompactedFile.h"
#include "wpp/Twpp.h"

#include <cstdio>

using namespace twpp;

int main() {
  // kernel(): per iteration, block structure mirrors the paper's Fig. 9 —
  // the loop body always "loads" v (uses it), sometimes "stores" it
  // (reassigns), and on a subset of iterations reaches a second use.
  const char *Source = R"(
    fn kernel(n) {
      v = 100;          // initial load of the cached value
      i = 0;
      s = 0;
      while (i < n) {
        s = s + v;      // 1_Load: v is used every iteration
        if (i % 5 == 4) {
          v = v + i;    // 6_Store: kills the cached value
        } else {
          if (i % 2 == 0) {
            s = s - v;  // 4_Load: the candidate redundant use
          }
        }
        i = i + 1;
      }
      return s;
    }
    fn main() {
      r = call kernel(200);
      print r;
    }
  )";

  Module M;
  std::string Error;
  if (!compileProgram(Source, M, Error)) {
    std::fprintf(stderr, "compile error: %s\n", Error.c_str());
    return 1;
  }
  const Function *Kernel = M.findFunction("kernel");

  ExecutionResult Result;
  RawTrace Trace = traceExecution(M, {}, Result);
  if (!Result.Completed) {
    std::fprintf(stderr, "execution failed: %s\n", Result.Error.c_str());
    return 1;
  }

  // Classify the lowered CFG automatically: availability of v's value —
  // blocks reading v generate it (the load leaves it in a register),
  // blocks writing v kill it.
  VarId V = M.internVar("v");
  BlockFactSpec Spec = availabilityFact(*Kernel, V);
  std::printf("kernel CFG: %u blocks; gen blocks:", Kernel->blockCount());
  for (BlockId B : Spec.GenBlocks)
    std::printf(" %u", B);
  std::printf("; kill blocks:");
  for (BlockId B : Spec.KillBlocks)
    std::printf(" %u", B);
  std::printf("\n");

  EffectFn Effect = Spec.asEffectFn();

  // Profile-limited analysis runs per unique path trace of the function.
  std::vector<std::vector<BlockId>> Traces;
  extractFunctionTraces(Trace, Kernel->Id, Traces);
  std::printf("kernel was called %zu time(s)\n", Traces.size());

  // The query point: the second-use block (the one that reads v inside
  // the inner else-arm). It is the last gen block in block order.
  BlockId QueryBlock = Spec.GenBlocks.back();
  for (const auto &Path : Traces) {
    AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Path);
    FactFrequency Freq = factFrequency(Cfg, QueryBlock, Effect);
    std::printf("block %u executed %llu times; value already available "
                "%llu times (%.0f%% redundant) [%llu queries]\n",
                QueryBlock, (unsigned long long)Freq.Total,
                (unsigned long long)Freq.Holds, 100.0 * Freq.ratio(),
                (unsigned long long)Freq.QueriesGenerated);
    if (Freq.ratio() > 0.9)
      std::printf("=> optimizer verdict: keep the value in a register / "
                  "specialize this path\n");
    else
      std::printf("=> optimizer verdict: redundancy too low to pay for "
                  "specialization\n");
  }
  return 0;
}
