//===- examples/profile_merge.cpp - Aggregating runs into one profile ------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Profile databases accumulate many executions. This example runs the
// same program on several inputs, compacts each run online, merges the
// runs into one WPP (redundant path traces are eliminated *across* runs
// too), and shows what the merged archive answers.
//
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"
#include "runtime/Interpreter.h"
#include "wpp/Archive.h"
#include "wpp/HotPaths.h"
#include "wpp/Merge.h"
#include "wpp/Sizes.h"
#include "wpp/Streaming.h"

#include <cstdio>

using namespace twpp;

int main() {
  const char *Source = R"(
    fn classify(v) {
      if (v < 0) { return 0 - 1; }
      if (v == 0) { return 0; }
      return 1;
    }
    fn main() {
      read n;
      i = 0;
      while (i < n) {
        read v;
        c = call classify(v);
        print c;
        i = i + 1;
      }
    }
  )";
  Module M;
  std::string Error;
  if (!compileProgram(Source, M, Error)) {
    std::fprintf(stderr, "compile error: %s\n", Error.c_str());
    return 1;
  }

  // Three runs with different input mixes.
  std::vector<std::vector<int64_t>> Inputs = {
      {3, -5, 2, 0},       // one of each class
      {4, 1, 2, 3, 4},     // all positive
      {2, -1, -2},         // all negative
  };
  std::vector<PartitionedWpp> Runs;
  for (const auto &RunInputs : Inputs) {
    StreamingCompactor Sink(static_cast<uint32_t>(M.Functions.size()));
    Interpreter Interp(M, Sink);
    ExecutionResult Result = Interp.run(RunInputs);
    if (!Result.Completed) {
      std::fprintf(stderr, "run failed: %s\n", Result.Error.c_str());
      return 1;
    }
    Runs.push_back(Sink.takePartitioned());
  }

  const Function *Classify = M.findFunction("classify");
  for (size_t R = 0; R < Runs.size(); ++R)
    std::printf("run %zu: classify called %llu times, %zu unique paths\n",
                R,
                (unsigned long long)Runs[R]
                    .Functions[Classify->Id]
                    .CallCount,
                Runs[R].Functions[Classify->Id].UniqueTraces.size());

  std::vector<const PartitionedWpp *> Pointers;
  for (const PartitionedWpp &Run : Runs)
    Pointers.push_back(&Run);
  PartitionedWpp Merged = mergePartitionedWpps(Pointers);
  TwppWpp Compacted = convertToTwpp(applyDbbCompaction(Merged));

  const TwppFunctionTable &Table = Compacted.Functions[Classify->Id];
  std::printf("\nmerged: classify called %llu times across %zu runs, "
              "still only %zu unique paths\n",
              (unsigned long long)Table.CallCount, Runs.size(),
              Table.Traces.size());
  for (const HotPath &Path : hotPathsOf(Table)) {
    std::printf("  x%llu:", (unsigned long long)Path.UseCount);
    for (BlockId B : Path.Blocks)
      std::printf(" %u", B);
    std::printf("\n");
  }
  std::printf("DCG forest roots (one per run): %zu\n",
              Compacted.Dcg.Roots.size());
  return 0;
}
