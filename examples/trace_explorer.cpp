//===- examples/trace_explorer.cpp - CLI over a TWPP archive ---------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Command-line explorer for compacted TWPP archives. With no arguments
// it builds the 130.li-like synthetic workload, writes its archive, and
// summarizes it; given an archive path it summarizes that file; given a
// path and a function id it extracts only that function's traces (the
// paper's headline query) and reports how long the indexed access took.
//
//   trace_explorer [archive.twpp] [function-id]
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include "support/Timer.h"
#include "workloads/Workload.h"
#include "wpp/Archive.h"
#include "wpp/HotPaths.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace twpp;

int main(int Argc, char **Argv) {
  std::string Path;
  if (Argc > 1) {
    Path = Argv[1];
  } else {
    Path = "/tmp/twpp_explorer_demo.twpp";
    std::printf("no archive given; generating the 130.li-like workload "
                "into %s\n",
                Path.c_str());
    WorkloadProfile Profile = paperProfiles()[2];
    RawTrace Trace = generateWorkloadTrace(Profile);
    if (!writeArchiveFile(Path, compactWpp(Trace))) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      return 1;
    }
  }

  ArchiveReader Reader;
  Stopwatch OpenTimer;
  if (!Reader.open(Path)) {
    const verify::Diagnostic &D = Reader.lastError();
    std::fprintf(stderr, "cannot open archive %s: [%s] %s: %s\n",
                 Path.c_str(), D.CheckId.c_str(), D.Location.c_str(),
                 D.Message.c_str());
    return 1;
  }
  double OpenMs = OpenTimer.elapsedMs();

  if (Argc > 2) {
    FunctionId F = static_cast<FunctionId>(std::atoi(Argv[2]));
    Stopwatch ExtractTimer;
    TwppFunctionTable Table;
    if (!Reader.extractFunction(F, Table)) {
      std::fprintf(stderr, "no such function %u\n", F);
      return 1;
    }
    double ExtractMs = ExtractTimer.elapsedMs();
    // Hottest paths first (paper: the pre-TWPP trace form identifies hot
    // paths; here reconstructed from the timestamped archive block).
    std::vector<HotPath> Paths = hotPathsOf(Table, 8);
    std::printf("function %u: %llu calls, %zu unique path traces "
                "(open %.3f ms, extract %.3f ms)\n",
                F, (unsigned long long)Table.CallCount, Table.Traces.size(),
                OpenMs, ExtractMs);
    for (const HotPath &Path : Paths) {
      std::printf("  path #%u (x%llu, %zu blocks): ", Path.TraceIndex,
                  (unsigned long long)Path.UseCount, Path.Blocks.size());
      for (size_t B = 0; B < Path.Blocks.size() && B < 24; ++B)
        std::printf("%u.", Path.Blocks[B]);
      if (Path.Blocks.size() > 24)
        std::printf("..");
      std::printf("\n");
    }
    if (Table.Traces.size() > Paths.size())
      std::printf("  ... %zu more\n", Table.Traces.size() - Paths.size());
    return 0;
  }

  std::printf("archive %s: %u functions (opened in %.3f ms)\n",
              Path.c_str(), Reader.functionCount(), OpenMs);
  std::printf("%-10s %-12s %s\n", "function", "calls", "");
  uint64_t Shown = 0;
  for (FunctionId F = 0; F < Reader.functionCount() && Shown < 20; ++F) {
    if (Reader.callCount(F) == 0)
      continue;
    std::printf("%-10u %-12llu\n", F,
                (unsigned long long)Reader.callCount(F));
    ++Shown;
  }
  std::printf("(pass a function id to extract its path traces)\n");
  return 0;
}
