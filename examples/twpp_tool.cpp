//===- examples/twpp_tool.cpp - Command-line driver -------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// The whole system as one command-line tool:
//
//   twpp_tool trace <program.mini> <archive.twpp> [input...]
//       Compile a mini-language program, run it with the given integer
//       inputs while compacting the WPP online, and write the archive.
//   twpp_tool stats <archive.twpp>
//       Per-function summary of an archive.
//   twpp_tool query <archive.twpp> <function-id>
//       Extract one function's path traces (the paper's headline query).
//   twpp_tool dot-dcg <archive.twpp>
//       Graphviz rendering of the dynamic call graph.
//   twpp_tool dot-trace <archive.twpp> <function-id> <trace-index>
//       Graphviz rendering of one annotated dynamic CFG.
//   twpp_tool reconstruct <archive.twpp> <out.owpp>
//       Expand the archive back to the uncompacted linear WPP.
//
// Global options (before or after the command):
//
//   --jobs N               Fan the function-level compaction stages out
//                          over N worker threads (0 = one per hardware
//                          thread). Archives are byte-identical for any N.
//   --metrics-out <path>   Collect pipeline telemetry and write it out.
//   --metrics-format FMT   Format for --metrics-out: json (default) or
//                          prom (Prometheus text exposition).
//   --metrics-table        Print the telemetry tables to stderr on exit.
//   --trace-out <path>     Record an event timeline and write it as Chrome
//                          trace-event JSON (chrome://tracing / Perfetto).
//   --self-profile <path>  Compact this run's own execution into a TWPP
//                          archive (TWPP-on-TWPP): the flight recorder's
//                          span stream becomes enter/exit events and the
//                          tool writes <path> (+ <path>.meta sidecar) for
//                          twpp_selfprof / twpp_verify. Also enabled by
//                          the TWPP_SELF_PROFILE environment variable.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Dump.h"
#include "lang/Lower.h"
#include "obs/Export.h"
#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/SelfProfile.h"
#include "obs/Trace.h"
#include "runtime/Interpreter.h"
#include "support/FileIO.h"
#include "trace/UncompactedFile.h"
#include "verify/Verify.h"
#include "wpp/Archive.h"
#include "wpp/HotPaths.h"
#include "wpp/Streaming.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace twpp;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: twpp_tool trace <program.mini> <archive.twpp> [input...]\n"
      "       twpp_tool stats <archive.twpp>\n"
      "       twpp_tool query <archive.twpp> <function-id>\n"
      "       twpp_tool dot-dcg <archive.twpp>\n"
      "       twpp_tool dot-trace <archive.twpp> <function-id> <trace-#>\n"
      "       twpp_tool reconstruct <archive.twpp> <out.owpp>\n"
      "global options:\n"
      "       --io MODE              archive read path: mmap (default,\n"
      "                              zero-copy, falls back to buffered)\n"
      "                              or buffered\n"
      "       --jobs N               parallel compaction worker threads\n"
      "                              (0 = all hardware threads)\n"
      "       --metrics-out <path>   write pipeline telemetry\n"
      "       --metrics-format FMT   json (default) or prom (Prometheus\n"
      "                              text exposition) for --metrics-out\n"
      "       --metrics-table        print telemetry tables to stderr\n"
      "       --trace-out <path>     write Chrome trace-event JSON "
      "timeline\n"
      "       --self-profile <path>  compact this run's own execution\n"
      "                              into a TWPP archive (+ .meta sidecar\n"
      "                              for twpp_selfprof); also enabled by\n"
      "                              the TWPP_SELF_PROFILE env variable\n"
      "durability options (trace command):\n"
      "       --journal <path>       checkpoint compactor state to a\n"
      "                              crash-recovery journal (*.twppj)\n"
      "       --checkpoint-interval N\n"
      "                              events between checkpoints (default\n"
      "                              4096 when --journal is set)\n"
      "       --memory-budget BYTES  degrade (drop oldest open frame's\n"
      "                              block detail) past this state size\n"
      "       --resume <journal>     skip execution; rebuild the compactor\n"
      "                              from the journal's last checkpoint and\n"
      "                              write the archive of that prefix\n"
      "exit codes: 0 success, 1 command failed (bad input, corrupt\n"
      "archive/journal, write failure), 2 usage error\n");
  return 2;
}

/// Parallelism for the compaction stages, set by the global --jobs flag.
ParallelConfig Jobs;

/// Durability knobs for the trace command, set by the global --journal /
/// --checkpoint-interval / --memory-budget flags.
StreamingConfig StreamCfg;

/// When set (--resume), the trace command skips execution and finalizes
/// the archive from this journal's last checkpoint.
std::string ResumeJournal;

bool readTextFile(const std::string &Path, std::string &Text) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes))
    return false;
  Text.assign(Bytes.begin(), Bytes.end());
  return true;
}

int cmdTrace(int Argc, char **Argv) {
  if (Argc < 4)
    return usage();
  std::string Source;
  if (!readTextFile(Argv[2], Source)) {
    std::fprintf(stderr, "cannot read %s\n", Argv[2]);
    return 1;
  }
  Module M;
  std::string Error;
  if (!compileProgram(Source, M, Error)) {
    std::fprintf(stderr, "%s: %s\n", Argv[2], Error.c_str());
    return 1;
  }
  std::vector<int64_t> Inputs;
  for (int I = 4; I < Argc; ++I)
    Inputs.push_back(std::atoll(Argv[I]));

  if (!ResumeJournal.empty()) {
    // Crash recovery: rebuild the compactor from the journal's last
    // checkpoint and write the archive of that prefix. Open calls the
    // checkpoint caught mid-flight are closed with the blocks recorded
    // so far.
    std::string ResumeError;
    std::unique_ptr<StreamingCompactor> Sink =
        StreamingCompactor::resumeFromJournal(ResumeJournal, StreamCfg,
                                              &ResumeError);
    if (!Sink) {
      std::fprintf(stderr, "cannot resume from %s: %s\n",
                   ResumeJournal.c_str(), ResumeError.c_str());
      return 1;
    }
    if (Sink->functionCount() != static_cast<uint32_t>(M.Functions.size())) {
      std::fprintf(stderr,
                   "journal %s records %u functions but %s has %zu — "
                   "wrong program?\n",
                   ResumeJournal.c_str(), Sink->functionCount(), Argv[2],
                   M.Functions.size());
      return 1;
    }
    uint64_t Events = Sink->eventsConsumed();
    while (!Sink->balanced())
      Sink->onExit();
    TwppWpp Compacted = Sink->takeCompacted(Jobs);
    IoError WriteError;
    if (!writeArchiveFile(Argv[3], Compacted, Jobs, &WriteError)) {
      std::fprintf(stderr, "cannot write %s: %s\n", Argv[3],
                   WriteError.message().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "wrote %s from %s (%llu checkpointed events recovered)\n",
                 Argv[3], ResumeJournal.c_str(),
                 (unsigned long long)Events);
    return 0;
  }

  // Online compaction: the raw event stream never exists. With --journal
  // the compactor checkpoints its state as it goes.
  if (!StreamCfg.JournalPath.empty() && StreamCfg.CheckpointInterval == 0)
    StreamCfg.CheckpointInterval = 4096;
  StreamingCompactor Sink(static_cast<uint32_t>(M.Functions.size()),
                          StreamCfg);
  Interpreter Interp(M, Sink);
  ExecutionResult Result = Interp.run(Inputs);
  if (!Result.Completed) {
    std::fprintf(stderr, "execution aborted: %s\n", Result.Error.c_str());
    return 1;
  }
  for (int64_t Value : Result.Output)
    std::printf("%lld\n", static_cast<long long>(Value));

  if (!StreamCfg.JournalPath.empty()) {
    IoError Checkpoint = Sink.checkpointNow();
    if (!Checkpoint)
      std::fprintf(stderr, "warning: final checkpoint failed: %s\n",
                   Checkpoint.message().c_str());
  }
  if (!Sink.lastJournalError().ok())
    std::fprintf(stderr, "warning: journaling degraded: %s\n",
                 Sink.lastJournalError().message().c_str());
  if (Sink.degradedFrames() > 0)
    std::fprintf(stderr,
                 "warning: memory budget dropped block detail of %llu "
                 "open frames\n",
                 (unsigned long long)Sink.degradedFrames());

  TwppWpp Compacted = Sink.takeCompacted(Jobs);
  IoError WriteError;
  if (!writeArchiveFile(Argv[3], Compacted, Jobs, &WriteError)) {
    std::fprintf(stderr, "cannot write %s: %s\n", Argv[3],
                 WriteError.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%llu blocks executed, %zu functions)\n",
               Argv[3], (unsigned long long)Result.BlocksExecuted,
               M.Functions.size());
  return 0;
}

bool openArchive(const char *Path, ArchiveReader &Reader) {
  if (Reader.open(Path))
    return true;
  const verify::Diagnostic &D = Reader.lastError();
  if (D.ByteOffset != verify::NoByteOffset)
    std::fprintf(stderr, "cannot open archive %s: [%s] %s: %s (byte %llu)\n",
                 Path, D.CheckId.c_str(), D.Location.c_str(),
                 D.Message.c_str(),
                 static_cast<unsigned long long>(D.ByteOffset));
  else
    std::fprintf(stderr, "cannot open archive %s: [%s] %s: %s\n", Path,
                 D.CheckId.c_str(), D.Location.c_str(), D.Message.c_str());
  return false;
}

int cmdStats(int Argc, char **Argv) {
  if (Argc != 3)
    return usage();
  ArchiveReader Reader;
  if (!openArchive(Argv[2], Reader))
    return 1;
  TwppWpp Wpp;
  if (!Reader.readAll(Wpp)) {
    std::fprintf(stderr, "corrupt archive\n");
    return 1;
  }
  std::fputs(dumpSummary(Wpp).c_str(), stdout);
  return 0;
}

int cmdQuery(int Argc, char **Argv) {
  if (Argc != 4)
    return usage();
  ArchiveReader Reader;
  if (!openArchive(Argv[2], Reader))
    return 1;
  FunctionId F = static_cast<FunctionId>(std::atoi(Argv[3]));
  TwppFunctionTable Table;
  if (!Reader.extractFunction(F, Table)) {
    std::fprintf(stderr, "no function %u\n", F);
    return 1;
  }
  for (const HotPath &Path : hotPathsOf(Table)) {
    std::printf("x%llu:", (unsigned long long)Path.UseCount);
    for (BlockId B : Path.Blocks)
      std::printf(" %u", B);
    std::printf("\n");
  }
  return 0;
}

int cmdDotDcg(int Argc, char **Argv) {
  if (Argc != 3)
    return usage();
  ArchiveReader Reader;
  if (!openArchive(Argv[2], Reader))
    return 1;
  DynamicCallGraph Dcg;
  if (!Reader.readDcg(Dcg)) {
    std::fprintf(stderr, "corrupt DCG\n");
    return 1;
  }
  std::fputs(dumpDcgDot(Dcg).c_str(), stdout);
  return 0;
}

int cmdDotTrace(int Argc, char **Argv) {
  if (Argc != 5)
    return usage();
  ArchiveReader Reader;
  if (!openArchive(Argv[2], Reader))
    return 1;
  FunctionId F = static_cast<FunctionId>(std::atoi(Argv[3]));
  size_t TraceIndex = static_cast<size_t>(std::atoi(Argv[4]));
  TwppFunctionTable Table;
  if (!Reader.extractFunction(F, Table) ||
      TraceIndex >= Table.Traces.size()) {
    std::fprintf(stderr, "no such function/trace\n");
    return 1;
  }
  auto [StringIdx, DictIdx] = Table.Traces[TraceIndex];
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfg(
      Table.TraceStrings[StringIdx], Table.Dictionaries[DictIdx]);
  std::fputs(dumpAnnotatedCfgDot(Cfg, "f" + std::to_string(F) + "_t" +
                                          std::to_string(TraceIndex))
                 .c_str(),
             stdout);
  return 0;
}

int cmdReconstruct(int Argc, char **Argv) {
  if (Argc != 4)
    return usage();
  ArchiveReader Reader;
  if (!openArchive(Argv[2], Reader))
    return 1;
  TwppWpp Wpp;
  if (!Reader.readAll(Wpp)) {
    std::fprintf(stderr, "corrupt archive\n");
    return 1;
  }
  RawTrace Trace = reconstructRawTrace(Wpp);
  if (!writeUncompactedTraceFile(Argv[3], Trace)) {
    std::fprintf(stderr, "cannot write %s\n", Argv[3]);
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu events)\n", Argv[3],
               Trace.Events.size());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // Arm the TWPP_VERIFY post-stage assertions; they fire only when the
  // environment variable is set.
  verify::installPipelineVerifier();
  // Strip the global telemetry options before command dispatch so they
  // work in any position.
  std::string MetricsOut;
  std::string MetricsFormat = "json";
  std::string TraceOut;
  std::string SelfProfilePath;
  bool MetricsTable = false;
  std::vector<char *> Args;
  Args.reserve(static_cast<size_t>(Argc) + 1);
  for (int I = 0; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--metrics-out") == 0) {
      if (I + 1 >= Argc)
        return usage();
      MetricsOut = Argv[++I];
    } else if (std::strcmp(Argv[I], "--metrics-format") == 0) {
      if (I + 1 >= Argc)
        return usage();
      MetricsFormat = Argv[++I];
    } else if (std::strncmp(Argv[I], "--metrics-format=", 17) == 0) {
      MetricsFormat = Argv[I] + 17;
    } else if (std::strcmp(Argv[I], "--self-profile") == 0) {
      if (I + 1 >= Argc)
        return usage();
      SelfProfilePath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--self-profile=", 15) == 0) {
      SelfProfilePath = Argv[I] + 15;
    } else if (std::strcmp(Argv[I], "--trace-out") == 0) {
      if (I + 1 >= Argc)
        return usage();
      TraceOut = Argv[++I];
    } else if (std::strcmp(Argv[I], "--io") == 0) {
      if (I + 1 >= Argc)
        return usage();
      IoMode Mode;
      if (!parseIoMode(Argv[++I], Mode))
        return usage();
      setDefaultArchiveIoMode(Mode);
    } else if (std::strcmp(Argv[I], "--jobs") == 0) {
      if (I + 1 >= Argc)
        return usage();
      Jobs.Jobs = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--journal") == 0) {
      if (I + 1 >= Argc)
        return usage();
      StreamCfg.JournalPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--checkpoint-interval") == 0) {
      if (I + 1 >= Argc)
        return usage();
      StreamCfg.CheckpointInterval =
          static_cast<uint64_t>(std::atoll(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--memory-budget") == 0) {
      if (I + 1 >= Argc)
        return usage();
      StreamCfg.MemoryBudgetBytes =
          static_cast<uint64_t>(std::atoll(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--resume") == 0) {
      if (I + 1 >= Argc)
        return usage();
      ResumeJournal = Argv[++I];
    } else if (std::strcmp(Argv[I], "--metrics-table") == 0) {
      MetricsTable = true;
    } else {
      Args.push_back(Argv[I]);
    }
  }
  Args.push_back(nullptr);
  int Count = static_cast<int>(Args.size()) - 1;
  if (Count < 2)
    return usage();
  if (MetricsFormat != "json" && MetricsFormat != "prom") {
    std::fprintf(stderr, "unknown --metrics-format %s (json or prom)\n",
                 MetricsFormat.c_str());
    return usage();
  }

  if (!MetricsOut.empty() || MetricsTable) {
    obs::setMetricsEnabled(true);
    // Pre-register every canonical metric so the export enumerates all
    // pipeline stages, zero-valued when this command does not reach them.
    obs::names::registerCanonicalMetrics(obs::metrics());
  }
  if (!TraceOut.empty()) {
    obs::setTracingEnabled(true);
    obs::setCurrentThreadName("main");
  }
  // Self-profiling: compact this very run into a TWPP archive. The flag
  // wins over the TWPP_SELF_PROFILE environment variable; either turns
  // the flight recorder on for the SelfProfiler to consume.
  bool SelfProfiling = false;
  if (!SelfProfilePath.empty()) {
    obs::SelfProfileConfig SelfCfg;
    SelfCfg.ArchivePath = SelfProfilePath;
    SelfProfiling = obs::enableSelfProfile(std::move(SelfCfg));
  } else {
    SelfProfiling = obs::maybeEnableSelfProfileFromEnv();
  }
  if (SelfProfiling)
    obs::setCurrentThreadName("main");
  bool Telemetry = !MetricsOut.empty() || MetricsTable || !TraceOut.empty();
  if (Telemetry) {
    // Memory telemetry rides along with either sink: the tracker feeds
    // the mem.tracked_* gauges and the poller samples RSS (emitting
    // counter tracks when tracing).
    obs::setMemTrackingEnabled(true);
    obs::startMemPoller();
  }

  int Exit;
  char **Cmd = Args.data();
  if (std::strcmp(Cmd[1], "trace") == 0)
    Exit = cmdTrace(Count, Cmd);
  else if (std::strcmp(Cmd[1], "stats") == 0)
    Exit = cmdStats(Count, Cmd);
  else if (std::strcmp(Cmd[1], "query") == 0)
    Exit = cmdQuery(Count, Cmd);
  else if (std::strcmp(Cmd[1], "dot-dcg") == 0)
    Exit = cmdDotDcg(Count, Cmd);
  else if (std::strcmp(Cmd[1], "dot-trace") == 0)
    Exit = cmdDotTrace(Count, Cmd);
  else if (std::strcmp(Cmd[1], "reconstruct") == 0)
    Exit = cmdReconstruct(Count, Cmd);
  else
    return usage();

  // Finish the self-profile before exporting metrics so the selfprof.*
  // counters it publishes land in the export.
  if (SelfProfiling) {
    obs::SelfProfileStats Stats;
    std::string SelfError;
    if (obs::finishSelfProfile(&Stats, &SelfError)) {
      std::fprintf(stderr,
                   "self-profile: wrote %llu spans (%llu events, %llu "
                   "functions, %llu records dropped)\n",
                   (unsigned long long)Stats.Spans,
                   (unsigned long long)Stats.Events,
                   (unsigned long long)Stats.Functions,
                   (unsigned long long)Stats.RecordsDropped);
    } else {
      std::fprintf(stderr, "cannot write self-profile: %s\n",
                   SelfError.c_str());
      if (Exit == 0)
        Exit = 1;
    }
  }
  if (Telemetry) {
    obs::stopMemPoller();
    obs::publishMemMetrics(obs::metrics());
  }
  bool MetricsOk =
      MetricsOut.empty() ||
      (MetricsFormat == "prom"
           ? obs::writeMetricsPromFile(MetricsOut, obs::metrics())
           : obs::writeMetricsJsonFile(MetricsOut, obs::metrics()));
  if (!MetricsOk)
    std::fprintf(stderr, "cannot write metrics to %s\n", MetricsOut.c_str());
  if (MetricsTable)
    std::fputs(obs::renderMetricsTable(obs::metrics()).c_str(), stderr);
  if (!TraceOut.empty() &&
      !obs::writeTraceJsonFile(TraceOut, obs::traceRecorder()))
    std::fprintf(stderr, "cannot write trace to %s\n", TraceOut.c_str());
  return Exit;
}
