//===- bench/fig12_currency.cpp - Paper Figure 12 --------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Figure 12: dynamic currency determination. Partial dead code
// elimination moved the second assignment to X from block 1 into block 2
// (the branch side that uses it). At a breakpoint in block 3, X's value
// in the optimized execution is current iff the executed path went
// through block 2 — decidable from the timestamped block trace.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ir/SinkAssignments.h"
#include "lang/Lower.h"
#include "runtime/Interpreter.h"
#include "slicing/Currency.h"
#include "support/TablePrinter.h"
#include "trace/UncompactedFile.h"

#include <cstdio>

using namespace twpp;

namespace {

/// The same scenario produced automatically: compile the figure's
/// program, run the PDE-style sinking pass, derive the currency problem
/// from the move log, and judge both executed paths.
void fromSource() {
  Module M;
  std::string Error;
  if (!compileProgram("fn main() {"
                      "  read p;"
                      "  x = 1;"
                      "  x = 2;"
                      "  if (p > 0) { y = x; } else { y = 5; }"
                      "  print y;"
                      "}",
                      M, Error)) {
    std::fprintf(stderr, "compile error: %s\n", Error.c_str());
    return;
  }
  const Function &Main = M.Functions[M.MainId];
  SinkResult Sunk = sinkPartiallyDeadAssignments(Main);
  CurrencyProblem Problem =
      currencyProblemFor(Main, Sunk, M.internVar("x"));

  TablePrinter Table(
      "Figure 12 (from source): PDE pass sank x's assignment; verdicts "
      "from the executed trace");
  Table.addRow({"Input", "Executed blocks", "Verdict"});
  for (int64_t P : {+1, -1}) {
    ExecutionResult Result;
    RawTrace Trace = traceExecution(M, {P}, Result);
    std::vector<std::vector<BlockId>> BlockTraces;
    extractFunctionTraces(Trace, Main.Id, BlockTraces);
    AnnotatedDynamicCfg Cfg =
        buildAnnotatedCfgFromSequence(BlockTraces[0]);
    Currency Verdict = checkCurrency(
        Cfg, static_cast<Timestamp>(BlockTraces[0].size()), Problem);
    std::string Path;
    for (BlockId B : BlockTraces[0])
      Path += (Path.empty() ? "" : ".") + std::to_string(B);
    Table.addRow({P > 0 ? "p=+1" : "p=-1", Path,
                  Verdict == Currency::Current ? "X is current"
                                               : "X is non-current"});
  }
  Table.print();
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchTelemetry Telemetry(Argc, Argv, "fig12_currency");
  CurrencyProblem Problem;
  // DefId 1: the first assignment to X (stays in block 1).
  // DefId 2: the partially dead assignment (block 1 -> block 2 after PDE).
  Problem.OriginalDefs = {{1, 1, 0}, {2, 1, 1}};
  Problem.OptimizedDefs = {{1, 1, 0}, {2, 2, 0}};

  TablePrinter Table("Figure 12: currency of X at the breakpoint (block 3)");
  Table.addRow({"Executed path", "Verdict", "Paper"});

  AnnotatedDynamicCfg Left = buildAnnotatedCfgFromSequence({1, 2, 3});
  Table.addRow({"1 -> 2 -> 3",
                checkCurrency(Left, 3, Problem) == Currency::Current
                    ? "X is current"
                    : "X is non-current",
                "X is current"});

  AnnotatedDynamicCfg Right = buildAnnotatedCfgFromSequence({1, 4, 3});
  Table.addRow({"1 -> 4 -> 3",
                checkCurrency(Right, 3, Problem) == Currency::Current
                    ? "X is current"
                    : "X is non-current",
                "X is non-current"});
  Table.print();

  fromSource();
  return 0;
}
