//===- bench/table1_trace_sizes.cpp - Paper Table 1 ------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Table 1: sizes of the sample input traces (the uncompacted WPPs): the
// dynamic call graph, the per-call path traces, and the total. The paper
// reports MB against full SPECint95 runs; the synthetic workloads are
// ~100x smaller, so KB here — the split between DCG and traces is the
// comparable quantity.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace twpp;
using namespace twpp::bench;

int main(int Argc, char **Argv) {
  BenchTelemetry Telemetry(Argc, Argv, "table1_trace_sizes");
  TablePrinter Table("Table 1: sample input traces (uncompacted WPP)");
  Table.addRow({"Program", "DCG (KB)", "WPP traces (KB)", "Total (KB)",
                "Events", "Calls"});
  for (const ProfileData &Data : buildAllProfiles(&Telemetry)) {
    Table.addRow({Data.Profile.Name, kb(Data.Owpp.DcgBytes),
                  kb(Data.Owpp.TraceBytes), kb(Data.Owpp.totalBytes()),
                  std::to_string(Data.Trace.Events.size()),
                  std::to_string(Data.Trace.callCount())});
  }
  Table.print();
  return 0;
}
