//===- bench/fig11_slicing.cpp - Paper Figures 10/11 -----------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Figures 10/11: the three Agrawal–Horgan dynamic slicing algorithms
// implemented over one timestamp-annotated dynamic CFG. The example
// program (14 statements), input N=3, X=(-4, 3, -2), slice on Z at the
// breakpoint (statement 14, timestamp 30). Paper results:
//   Approach 1 = all statements except 10
//   Approach 2 = all except 3 and 10
//   Approach 3 = all except 3, 8 and 10
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "slicing/DynamicSlicer.h"
#include "support/TablePrinter.h"

#include <string>

using namespace twpp;

namespace {

std::string setToString(const std::vector<BlockId> &Stmts) {
  std::string Out = "{";
  for (size_t I = 0; I < Stmts.size(); ++I)
    Out += (I ? "," : "") + std::to_string(Stmts[I]);
  return Out + "}";
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchTelemetry Telemetry(Argc, Argv, "fig11_slicing");
  Figure10Program Fig = buildFigure10Program();
  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Fig.Trace);

  TablePrinter Program("Figure 10: example program and timestamps");
  Program.addRow({"Stmt", "Text", "Timestamps"});
  for (BlockId Id = 1; Id <= Fig.Program.stmtCount(); ++Id) {
    std::string Series;
    size_t Node = Cfg.nodeIndexOf(Id);
    if (Node != AnnotatedDynamicCfg::npos)
      for (int64_t V : Cfg.Nodes[Node].Times.encodeSigned())
        Series += (Series.empty() ? "" : " ") + std::to_string(V);
    Program.addRow({std::to_string(Id), Fig.Program.stmt(Id).Label,
                    Series});
  }
  Program.print();

  SliceResult A1 =
      sliceApproach1(Fig.Program, Cfg, Fig.Breakpoint, Fig.VarZ);
  SliceResult A2 =
      sliceApproach2(Fig.Program, Cfg, Fig.Breakpoint, Fig.VarZ);
  SliceResult A3 =
      sliceApproach3(Fig.Program, Cfg, Fig.Breakpoint, Fig.VarZ, 30);

  TablePrinter Slices(
      "Figure 11: dynamic slices of Z at the breakpoint (stmt 14, t=30)");
  Slices.addRow({"Approach", "Slice", "Queries", "Paper slice"});
  Slices.addRow({"1 (executed nodes)", setToString(A1.Stmts),
                 std::to_string(A1.QueriesGenerated),
                 "{1..14} - {10}"});
  Slices.addRow({"2 (executed edges)", setToString(A2.Stmts),
                 std::to_string(A2.QueriesGenerated),
                 "{1..14} - {3,10}"});
  Slices.addRow({"3 (exact instances)", setToString(A3.Stmts),
                 std::to_string(A3.QueriesGenerated),
                 "{1..14} - {3,8,10}"});
  Slices.print();
  return 0;
}
