//===- bench/race_detect.cpp - Race detection on the compacted form -------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Compares the compacted-representation race detector (vector clocks
// advanced over timestamp-set runs, no trace expansion) against the
// decompress-and-check oracle on the concurrent workload profiles. The
// two engines must agree on every profile — a disagreement is a bench
// failure, not a table row.
//
//   race_detect [--emit DIR] [--metrics-out PATH] [--trace-out PATH]
//
// --emit DIR additionally writes each profile's thread-aware archive to
// DIR/<profile>.twpp (test-sized, seeded) so CI can smoke-test the
// twpp_races CLI against known racy and race-free inputs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "races/RaceDetect.h"
#include "workloads/Concurrent.h"
#include "wpp/Archive.h"
#include "wpp/Concurrent.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace twpp;
using namespace twpp::bench;
using namespace twpp::races;

namespace {

/// Wall time of \p Fn, best of \p Reps runs (races are pure CPU work, so
/// the minimum is the least noisy estimator).
template <typename FnT> double bestOfMs(unsigned Reps, FnT &&Fn) {
  double Best = 0;
  for (unsigned R = 0; R != Reps; ++R) {
    Stopwatch Sw;
    Fn();
    double Ms = Sw.elapsedUs() / 1000.0;
    if (R == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

int emitArchives(const std::string &Dir) {
  for (const ConcurrentProfile &P : testConcurrentProfiles()) {
    ConcurrentWpp Wpp = compactConcurrentWpp(generateConcurrentTrace(P));
    std::string Path = Dir + "/" + P.Name + ".twpp";
    if (!writeConcurrentArchiveFile(Path, Wpp)) {
      std::fprintf(stderr, "race_detect: cannot write %s\n", Path.c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench] wrote %s\n", Path.c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--emit") == 0)
      if (int Rc = emitArchives(Argv[I + 1]))
        return Rc;

  BenchTelemetry Telemetry(Argc, Argv, "race_detect");
  TablePrinter Table("Race detection: compacted engine vs "
                     "decompress-and-check oracle");
  Table.addRow({"Profile", "Thr", "Accesses", "Edges", "Verdict",
                "Compacted (ms)", "Oracle (ms)", "Speedup"});

  bool Mismatch = false;
  for (const ConcurrentProfile &P : concurrentProfiles()) {
    std::fprintf(stderr, "[bench] building %s...\n", P.Name.c_str());
    ConcurrentTrace Trace = generateConcurrentTrace(P);
    ConcurrentWpp Wpp = compactConcurrentWpp(Trace);

    RaceReport Compacted = detectRacesCompacted(Wpp.Conc);
    RaceReport Oracle = detectRacesOracle(Wpp.Conc);
    if (!sameVerdict(Compacted, Oracle)) {
      std::fprintf(stderr,
                   "race_detect: engines disagree on %s\n"
                   "--- compacted ---\n%s--- oracle ---\n%s",
                   P.Name.c_str(), renderRaceLines(Compacted).c_str(),
                   renderRaceLines(Oracle).c_str());
      Mismatch = true;
    }

    double CompactedMs =
        bestOfMs(5, [&] { detectRacesCompacted(Wpp.Conc); });
    double OracleMs = bestOfMs(3, [&] { detectRacesOracle(Wpp.Conc); });

    Table.addRow({P.Name, std::to_string(P.Threads),
                  std::to_string(Trace.Accesses.size()),
                  std::to_string(Wpp.Conc.Edges.size()),
                  Compacted.racy() ? "RACY" : "race-free",
                  formatDouble(CompactedMs, 3), formatDouble(OracleMs, 3),
                  formatDouble(OracleMs / CompactedMs, 1) + "x"});
    Telemetry.checkpoint(P.Name);
  }

  Table.print();
  return Mismatch ? 1 : 0;
}
