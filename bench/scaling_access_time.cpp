//===- bench/scaling_access_time.cpp - Extraction cost vs trace size -------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Supports the Table 4 discussion in EXPERIMENTS.md: extraction from the
// uncompacted WPP scales linearly with trace size (full-file scan) while
// archive extraction is essentially constant (index row + one block), so
// the speedup grows with the trace — at the paper's 100s-of-MB inputs
// the same code yields its >3 orders of magnitude. One profile (130.li)
// is generated at increasing call budgets and both paths are timed.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/FileIO.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "trace/UncompactedFile.h"
#include "workloads/Workload.h"
#include "wpp/Archive.h"

#include <cstdio>

using namespace twpp;

int main(int Argc, char **Argv) {
  bench::BenchTelemetry Telemetry(Argc, Argv, "scaling_access_time");
  TablePrinter Table(
      "Scaling: per-function extraction time vs trace size (130.li shape)");
  Table.addRow({"Calls", "Events", "OWPP (KB)", "Archive (KB)",
                "U scan (ms)", "C buffered (ms)", "C mmap (ms)", "Speedup"});

  WorkloadProfile Base = paperProfiles()[2]; // 130.li
  for (uint64_t Scale : {1, 2, 4, 8, 16}) {
    WorkloadProfile P = Base;
    P.TargetCalls = Base.TargetCalls / 16 * Scale;
    std::fprintf(stderr, "[bench] scale x%llu...\n",
                 (unsigned long long)Scale);
    RawTrace Trace = generateWorkloadTrace(P);
    TwppWpp Compacted = compactWpp(Trace);

    std::string OwppPath = "/tmp/twpp_scaling.owpp";
    std::string ArchivePath = "/tmp/twpp_scaling.twpp";
    if (!writeUncompactedTraceFile(OwppPath, Trace) ||
        !writeArchiveFile(ArchivePath, Compacted)) {
      std::fprintf(stderr, "write failed\n");
      return 1;
    }

    // Average over a handful of mid-frequency functions.
    std::vector<FunctionId> Sample;
    for (FunctionId F = 0;
         F < Compacted.Functions.size() && Sample.size() < 5; ++F)
      if (Compacted.Functions[F].CallCount > 10)
        Sample.push_back(F);

    RunningStats U, CBuffered, CMmap;
    for (FunctionId F : Sample) {
      Stopwatch Sw;
      std::vector<std::vector<BlockId>> Traces;
      extractFunctionTracesFromFile(OwppPath, F, Traces);
      U.add(Sw.elapsedMs());

      // Archive extraction on both read paths: buffered IO, then the
      // zero-copy mmap + decode-arena path.
      Sw.reset();
      ArchiveReader Buffered;
      Buffered.open(ArchivePath, IoMode::Buffered);
      FunctionPathTraces Out;
      Buffered.extractFunctionPathTraces(F, Out);
      CBuffered.add(Sw.elapsedMs());

      Sw.reset();
      ArchiveReader Mapped;
      Mapped.open(ArchivePath, IoMode::Mmap);
      FunctionPathTraces OutMmap;
      Mapped.extractFunctionPathTraces(F, OutMmap);
      CMmap.add(Sw.elapsedMs());
    }

    Table.addRow({std::to_string(P.TargetCalls),
                  std::to_string(Trace.Events.size()),
                  formatDouble(fileSize(OwppPath).value_or(0) / 1024.0, 1),
                  formatDouble(fileSize(ArchivePath).value_or(0) / 1024.0, 1),
                  formatDouble(U.mean(), 2), formatDouble(CBuffered.mean(), 3),
                  formatDouble(CMmap.mean(), 3),
                  formatFactor(U.mean() / std::max(CMmap.mean(), 1e-9))});
    std::remove(OwppPath.c_str());
    std::remove(ArchivePath.c_str());
    std::string Label = "x";
    Label += std::to_string(Scale);
    Telemetry.checkpoint(Label);
  }
  Table.print();
  return 0;
}
