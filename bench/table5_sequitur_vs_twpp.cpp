//===- bench/table5_sequitur_vs_twpp.cpp - Paper Table 5 -------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Table 5: the space/time trade-off against Larus's Sequitur-compressed
// WPP. The grammar is smaller (paper: x3.92 on average) but extracting
// one function's traces requires reading and processing the whole
// grammar (paper: 10s-1000s of ms), while the TWPP archive answers from
// its index in ~milliseconds (paper: 89-553x faster).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sequitur/Sequitur.h"
#include "support/FileIO.h"
#include "wpp/Archive.h"

#include <algorithm>
#include <cstdio>

using namespace twpp;
using namespace twpp::bench;

int main(int Argc, char **Argv) {
  BenchTelemetry Telemetry(Argc, Argv, "table5_sequitur_vs_twpp");
  TablePrinter Table(
      "Table 5: compacted sizes and per-function extraction times, "
      "Sequitur (Larus) vs TWPP archive");
  Table.addRow({"Program", "Sequitur (KB)", "TWPP (KB)", "Seq read (ms)",
                "Seq process (ms)", "Seq total (ms)", "TWPP (ms)",
                "Access ratio"});

  for (const ProfileData &Data : buildAllProfiles(&Telemetry)) {
    std::fprintf(stderr, "[bench] sequitur over %zu events...\n",
                 Data.Trace.Events.size());
    FlatGrammar Grammar = buildSequiturGrammar(Data.Trace);

    std::string GrammarPath =
        "/tmp/twpp_bench_" + Data.Profile.Name + ".seq";
    std::string ArchivePath =
        "/tmp/twpp_bench_" + Data.Profile.Name + ".twpp";
    if (!writeGrammarFile(GrammarPath, Grammar) ||
        !writeArchiveFile(ArchivePath, Data.Twpp)) {
      std::fprintf(stderr, "failed to write files\n");
      return 1;
    }

    // Sample functions for the timing average.
    std::vector<FunctionId> Functions;
    for (FunctionId F = 0; F < Data.Partitioned.Functions.size(); ++F)
      if (Data.Partitioned.Functions[F].CallCount > 0)
        Functions.push_back(F);
    std::vector<FunctionId> Sample;
    for (size_t I = 0; I < Functions.size() && Sample.size() < 6;
         I += std::max<size_t>(1, Functions.size() / 6))
      Sample.push_back(Functions[I]);

    RunningStats Read, Process, TwppTime;
    for (FunctionId F : Sample) {
      Stopwatch Sw;
      FlatGrammar Loaded;
      readGrammarFile(GrammarPath, Loaded);
      Read.add(Sw.elapsedMs());
      Sw.reset();
      std::vector<std::vector<BlockId>> Traces;
      extractFunctionTracesFromGrammar(Loaded, F, Traces);
      Process.add(Sw.elapsedMs());

      Sw.reset();
      ArchiveReader Reader;
      Reader.open(ArchivePath);
      FunctionPathTraces Out;
      Reader.extractFunctionPathTraces(F, Out);
      TwppTime.add(Sw.elapsedMs());
    }

    uint64_t SequiturBytes = fileSize(GrammarPath).value_or(0);
    uint64_t ArchiveBytes = fileSize(ArchivePath).value_or(0);
    double SeqTotal = Read.mean() + Process.mean();
    Table.addRow({Data.Profile.Name, kb(SequiturBytes), kb(ArchiveBytes),
                  formatDouble(Read.mean(), 1),
                  formatDouble(Process.mean(), 1),
                  formatDouble(SeqTotal, 1),
                  formatDouble(TwppTime.mean(), 3),
                  formatFactor(SeqTotal /
                               std::max(TwppTime.mean(), 1e-9))});
    std::remove(GrammarPath.c_str());
    std::remove(ArchivePath.c_str());
  }
  Table.print();
  return 0;
}
