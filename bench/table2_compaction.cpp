//===- bench/table2_compaction.cpp - Paper Table 2 -------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Table 2: WPP trace size after each compacting transformation —
// redundant path trace removal, DBB dictionary creation, conversion to
// compacted TWPP — with the per-stage reduction factor in parentheses and
// the overall OWPP/CTWPP ratio. Paper shape: redundancy removal is the
// big win (x5.66-9.5); dictionaries add x1.35-4.24; TWPP shrinks traces
// further for four of five programs and slightly grows 099.go.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace twpp;
using namespace twpp::bench;

namespace {

std::string withFactor(uint64_t Bytes, uint64_t PrevBytes) {
  double Factor = Bytes == 0
                      ? 0.0
                      : static_cast<double>(PrevBytes) /
                            static_cast<double>(Bytes);
  return kb(Bytes) + " (" + formatFactor(Factor) + ")";
}

} // namespace

int main(int Argc, char **Argv) {
  BenchTelemetry Telemetry(Argc, Argv, "table2_compaction");
  ParallelConfig Jobs = parseParallelConfig(Argc, Argv);
  TablePrinter Table(
      "Table 2: WPP trace compaction by transformation (KB, factor vs "
      "previous stage)");
  Table.addRow({"Program", "OWPP traces", "Redundancy removal",
                "Dictionary creation", "Compacted TWPP", "OWPP/CTWPP"});
  double TotalCompactionMs = 0;
  for (const ProfileData &Data : buildAllProfiles(&Telemetry, Jobs)) {
    const StageSizes &S = Data.Stages;
    TotalCompactionMs += Data.CompactionMs;
    Table.addRow(
        {Data.Profile.Name, kb(S.OwppTraceBytes),
         withFactor(S.DedupedTraceBytes, S.OwppTraceBytes),
         withFactor(S.DbbTraceBytes, S.DedupedTraceBytes),
         withFactor(S.TwppTraceBytes, S.DbbTraceBytes),
         formatFactor(static_cast<double>(S.OwppTraceBytes) /
                      static_cast<double>(S.TwppTraceBytes))});
  }
  Table.print();
  std::fprintf(stderr,
               "[bench] end-to-end compaction wall time: %.1f ms (jobs=%u)\n",
               TotalCompactionMs, Jobs.effectiveJobs());
  return 0;
}
