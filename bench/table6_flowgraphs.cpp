//===- bench/table6_flowgraphs.cpp - Paper Table 6 -------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Table 6: the cost model of profile-limited analysis — cumulative static
// flow graph size vs cumulative dynamic flow graph size (one annotated
// dynamic CFG per unique path trace of each function), plus the average
// timestamp vector size per dynamic node, before (raw element count) and
// after series compaction. Paper shape: dynamic graphs have far fewer
// nodes/edges than static ones, and compaction shrinks the vectors by a
// large factor (e.g. perl 616.8 -> 3.9).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "dataflow/AnnotatedCfg.h"

using namespace twpp;
using namespace twpp::bench;

int main(int Argc, char **Argv) {
  BenchTelemetry Telemetry(Argc, Argv, "table6_flowgraphs");
  TablePrinter Table(
      "Table 6: static vs dynamic flow graph sizes; avg timestamp vector "
      "entries per node (before compaction in parentheses)");
  Table.addRow({"Program", "Static N", "Static E", "Dynamic N", "Dynamic E",
                "avg dyn N/graph", "avg static N/fn",
                "avg |T| compacted (raw)"});

  for (const ProfileData &Data : buildAllProfiles(&Telemetry)) {
    CfgStats Static = Data.Program.staticStats();

    uint64_t DynNodes = 0, DynEdges = 0, Graphs = 0;
    uint64_t CompactedEntries = 0, RawEntries = 0;
    for (const TwppFunctionTable &Fn : Data.Twpp.Functions) {
      for (const auto &[StringIdx, DictIdx] : Fn.Traces) {
        AnnotatedDynamicCfg Cfg = buildAnnotatedCfg(
            Fn.TraceStrings[StringIdx], Fn.Dictionaries[DictIdx]);
        ++Graphs;
        DynNodes += Cfg.Nodes.size();
        DynEdges += Cfg.edgeCount();
        for (const AnnotatedNode &Node : Cfg.Nodes) {
          CompactedEntries += Node.Times.encodedValueCount();
          RawEntries += Node.Times.count();
        }
      }
    }

    double AvgCompacted =
        DynNodes == 0 ? 0.0
                      : static_cast<double>(CompactedEntries) / DynNodes;
    double AvgRaw =
        DynNodes == 0 ? 0.0 : static_cast<double>(RawEntries) / DynNodes;
    Table.addRow(
        {Data.Profile.Name, std::to_string(Static.Nodes),
         std::to_string(Static.Edges), std::to_string(DynNodes),
         std::to_string(DynEdges),
         formatDouble(Graphs == 0 ? 0.0
                                  : static_cast<double>(DynNodes) / Graphs,
                      1),
         formatDouble(static_cast<double>(Static.Nodes) /
                          Data.Program.Functions.size(),
                      1),
         formatDouble(AvgCompacted, 1) + " (" + formatDouble(AvgRaw, 1) +
             ")"});
  }
  Table.print();
  return 0;
}
