//===- bench/table3_overall.cpp - Paper Table 3 ----------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Table 3: the complete compacted WPP — LZW-compressed DCG, compacted
// TWPP trace strings, DBB dictionaries — and the overall compaction
// factor against the uncompacted WPP. Paper shape: factors from 7 (go)
// to 64 (perl), increasing go < gcc < li < ijpeg < perl.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace twpp;
using namespace twpp::bench;

int main(int Argc, char **Argv) {
  BenchTelemetry Telemetry(Argc, Argv, "table3_overall");
  TablePrinter Table("Table 3: overall compaction factor");
  Table.addRow({"Program", "Compacted DCG (KB)", "Traces (KB)",
                "Dictionaries (KB)", "Total (KB)", "Compaction factor"});
  for (const ProfileData &Data : buildAllProfiles(&Telemetry)) {
    const StageSizes &S = Data.Stages;
    uint64_t Total =
        S.CompactedDcgBytes + S.TwppTraceBytes + S.DictionaryBytes;
    Table.addRow({Data.Profile.Name, kb(S.CompactedDcgBytes),
                  kb(S.TwppTraceBytes), kb(S.DictionaryBytes), kb(Total),
                  formatDouble(static_cast<double>(Data.Owpp.totalBytes()) /
                                   static_cast<double>(Total),
                               0)});
  }
  Table.print();
  return 0;
}
