//===- bench/ablation_pipeline.cpp - Stage ablation study ------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Ablation over the design choices of Section 2: what each stage of the
// compaction pipeline buys, including a TWPP variant with the arithmetic
// series codec disabled (every timestamp stored individually) — the
// series are where the timestamped form earns its keep.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace twpp;
using namespace twpp::bench;

namespace {

/// TWPP trace-string bytes if every timestamp were stored as a singleton
/// entry (series compaction off).
uint64_t twppBytesWithoutSeries(const TwppWpp &Wpp) {
  uint64_t Bytes = 0;
  for (const TwppFunctionTable &Fn : Wpp.Functions) {
    for (const TwppTrace &Trace : Fn.TraceStrings) {
      Bytes += varintSize(Trace.Length) + varintSize(Trace.Blocks.size());
      for (const auto &[Block, Set] : Trace.Blocks) {
        Bytes += varintSize(Block);
        Bytes += varintSize(Set.count());
        for (Timestamp T : Set.toVector())
          Bytes += signedVarintSize(-static_cast<int64_t>(T));
      }
    }
  }
  return Bytes;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchTelemetry Telemetry(Argc, Argv, "ablation_pipeline");
  TablePrinter Table(
      "Ablation: trace bytes (KB) under partial pipelines");
  Table.addRow({"Program", "No compaction", "+dedup", "+DBB dict",
                "+TWPP no-series", "+TWPP series (full)"});
  for (const ProfileData &Data : buildAllProfiles(&Telemetry)) {
    const StageSizes &S = Data.Stages;
    uint64_t NoSeries = twppBytesWithoutSeries(Data.Twpp);
    Table.addRow({Data.Profile.Name, kb(S.OwppTraceBytes),
                  kb(S.DedupedTraceBytes),
                  kb(S.DbbTraceBytes + S.DictionaryBytes),
                  kb(NoSeries + S.DictionaryBytes),
                  kb(S.TwppTraceBytes + S.DictionaryBytes)});
  }
  Table.print();
  return 0;
}
