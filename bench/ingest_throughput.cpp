//===- bench/ingest_throughput.cpp - Multi-producer ingestion rate --------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Measures the ingestion frontend end to end: N in-process replay
// producers streaming twpp-wire-v1 frames over loopback sockets into one
// IngestServer (framed decode, per-producer sequencing, bounded queue,
// streaming compaction), reported as aggregate events/second. Three
// configurations bound the design space:
//
//   p1          one producer, pure pipeline rate
//   p4          four producers, the CI contract configuration
//   p4-journal  four producers + checkpoint journaling (fsync cost)
//
// Every configuration must end lossless — a throughput number measured
// while dropping events would be a lie, so loss is a bench failure.
//
//   ingest_throughput [--min-events-per-sec N] [--metrics-out PATH]
//
// --min-events-per-sec N makes the p4 aggregate rate a hard floor (CI
// runs with N=1000000): below it the bench exits 1.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ingest/Ingest.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace twpp;
using namespace twpp::bench;
using namespace twpp::ingest;

namespace {

/// The replay streams: test-scale workload profiles, reseeded per
/// producer exactly like `twpp_ingest replay` so numbers line up with
/// the CLI.
std::vector<RawTrace> producerTraces(size_t Producers) {
  std::vector<WorkloadProfile> Profiles = testProfiles();
  std::vector<RawTrace> Traces;
  for (size_t I = 0; I < Producers; ++I) {
    WorkloadProfile Profile = Profiles[I % Profiles.size()];
    Profile.Seed += I;
    Traces.push_back(generateWorkloadTrace(Profile));
  }
  return Traces;
}

struct RunResult {
  double EventsPerSec = 0;
  uint64_t Events = 0;
  double ElapsedMs = 0;
  uint64_t QueuePeak = 0;
  uint64_t Waits = 0;
  bool Lossless = false;
};

RunResult runConfig(const std::vector<RawTrace> &Traces, bool Journal,
                    const std::string &Label) {
  IngestConfig Config;
  if (Journal) {
    Config.JournalPrefix =
        std::string("/tmp/twpp_ingest_bench_") + Label;
    Config.CheckpointIntervalFrames = 64;
  }
  // Best of three: loopback socket scheduling is noisy on shared runners.
  RunResult Best;
  for (int Rep = 0; Rep < 3; ++Rep) {
    IngestReport Report = runLoopbackIngest(Config, Traces);
    RunResult Result;
    Result.Events = Report.EventsApplied;
    Result.ElapsedMs = Report.ElapsedUs / 1000.0;
    Result.EventsPerSec =
        Report.ElapsedUs > 0 ? Report.EventsApplied * 1e6 / Report.ElapsedUs
                             : 0;
    Result.QueuePeak = Report.QueueDepthPeak;
    Result.Waits = Report.BackpressureWaits;
    Result.Lossless = Report.clean();
    if (Rep == 0 || Result.EventsPerSec > Best.EventsPerSec) {
      Best = Result;
      // The metrics export keeps the best rep's counters, matching the
      // table row.
      obs::metrics().reset();
      obs::names::registerCanonicalMetrics(obs::metrics());
      publishIngestMetrics(Report);
    }
    if (!Result.Lossless)
      break; // no point timing a lossy pipeline
  }
  return Best;
}

std::string formatRate(double EventsPerSec) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2fM/s", EventsPerSec / 1e6);
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  double MinEventsPerSec = 0;
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--min-events-per-sec") == 0)
      MinEventsPerSec = std::atof(Argv[I + 1]);

  BenchTelemetry Telemetry(Argc, Argv, "ingest_throughput");
  TablePrinter Table("Ingestion throughput: wire decode + sequencing + "
                     "streaming compaction (loopback)");
  Table.addRow({"Config", "Producers", "Events", "Elapsed (ms)",
                "Aggregate rate", "Queue peak", "Waits", "Lossless"});

  struct ConfigSpec {
    const char *Label;
    size_t Producers;
    bool Journal;
  };
  const ConfigSpec Configs[] = {
      {"p1", 1, false},
      {"p4", 4, false},
      {"p4-journal", 4, true},
  };

  bool AnyLoss = false;
  double P4Rate = 0;
  for (const ConfigSpec &Spec : Configs) {
    std::fprintf(stderr, "[bench] running %s...\n", Spec.Label);
    std::vector<RawTrace> Traces = producerTraces(Spec.Producers);
    RunResult Result = runConfig(Traces, Spec.Journal, Spec.Label);
    if (!Result.Lossless) {
      std::fprintf(stderr, "ingest_throughput: %s lost events\n",
                   Spec.Label);
      AnyLoss = true;
    }
    if (std::strcmp(Spec.Label, "p4") == 0)
      P4Rate = Result.EventsPerSec;
    Table.addRow({Spec.Label, std::to_string(Spec.Producers),
                  std::to_string(Result.Events),
                  formatDouble(Result.ElapsedMs, 1),
                  formatRate(Result.EventsPerSec),
                  std::to_string(Result.QueuePeak),
                  std::to_string(Result.Waits),
                  Result.Lossless ? "yes" : "NO"});
    Telemetry.checkpoint(Spec.Label);
  }

  Table.print();

  if (MinEventsPerSec > 0 && P4Rate < MinEventsPerSec) {
    std::fprintf(stderr,
                 "ingest_throughput: p4 aggregate %.0f events/sec is below "
                 "the %.0f floor\n",
                 P4Rate, MinEventsPerSec);
    return 1;
  }
  return AnyLoss ? 1 : 0;
}
