//===- bench/fig8_redundancy.cpp - Paper Figure 8 --------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Figure 8: trace redundancy — the cumulative percentage of all function
// calls attributable to functions with at most N unique path traces.
// Paper shape: for li/ijpeg/perl, 57-80% of calls come from functions
// with <= 5 unique traces; gcc and go need ~25 and ~50 unique traces to
// cover 50% of calls.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace twpp;
using namespace twpp::bench;

int main(int Argc, char **Argv) {
  BenchTelemetry Telemetry(Argc, Argv, "fig8_redundancy");
  std::vector<uint64_t> Thresholds = {1, 2, 5, 10, 25, 50, 100, 200, 300};

  TablePrinter Table(
      "Figure 8: % of calls from functions with <= N unique path traces");
  std::vector<std::string> Header = {"Program"};
  for (uint64_t N : Thresholds)
    Header.push_back("N<=" + std::to_string(N));
  Table.addRow(Header);

  for (const ProfileData &Data : buildAllProfiles(&Telemetry)) {
    uint64_t TotalCalls = 0;
    for (const FunctionTraceTable &Fn : Data.Partitioned.Functions)
      TotalCalls += Fn.CallCount;

    std::vector<std::string> Row = {Data.Profile.Name};
    for (uint64_t N : Thresholds) {
      uint64_t Covered = 0;
      for (const FunctionTraceTable &Fn : Data.Partitioned.Functions)
        if (Fn.CallCount > 0 && Fn.UniqueTraces.size() <= N)
          Covered += Fn.CallCount;
      Row.push_back(formatDouble(100.0 * Covered / TotalCalls, 1));
    }
    Table.addRow(Row);
  }
  Table.print();
  return 0;
}
