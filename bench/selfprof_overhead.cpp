//===- bench/selfprof_overhead.cpp - Self-profiling overhead ---------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Measures what continuous self-profiling (obs/SelfProfile.h) costs the
// pipeline, and what it buys: wall time per full-compaction iteration in
// three modes — recorder off, flight recorder on, recorder plus
// self-profile archiving — and the storage ratio between the produced
// .twppa archive and the equivalent Chrome-trace JSON export of the same
// execution (the ISSUE's >=10x compaction claim).
//
//   selfprof_overhead [--iters N] [--archive PATH] [--jobs N]
//                     [--metrics-out FILE]
//
// With --metrics-out, each mode is one labelled telemetry checkpoint, so
// the committed BENCH_metrics.json carries the selfprof.* counters the
// twpp_metrics_diff CI leg gates.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "obs/PhaseSpan.h"
#include "obs/SelfProfile.h"

using namespace twpp;
using namespace twpp::bench;

namespace {

/// One full-compaction iteration over a prebuilt trace; the stages'
/// PhaseSpans are the workload the self-profiler records.
void runPipeline(const RawTrace &Trace, const ParallelConfig &Jobs) {
  obs::PhaseSpan Span("selfprof_overhead");
  PartitionedWpp Partitioned = partitionWpp(Trace);
  DbbWpp Dbb = applyDbbCompaction(Partitioned, Jobs);
  TwppWpp Twpp = convertToTwpp(Dbb, Jobs);
  (void)Twpp;
}

double timeIterations(const RawTrace &Trace, const ParallelConfig &Jobs,
                      unsigned Iters, bool DrainEachIter) {
  Stopwatch Watch;
  for (unsigned I = 0; I != Iters; ++I) {
    runPipeline(Trace, Jobs);
    if (DrainEachIter)
      if (obs::SelfProfiler *P = obs::selfProfiler())
        P->drain();
  }
  return Watch.elapsedUs() / 1000.0 / Iters;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchTelemetry Telemetry(Argc, Argv, "selfprof_overhead");
  ParallelConfig Jobs = parseParallelConfig(Argc, Argv);
  unsigned Iters = 5;
  std::string ArchivePath = "selfprof_overhead.twppa";
  for (int I = 1; I + 1 < Argc; ++I) {
    if (std::strcmp(Argv[I], "--iters") == 0)
      Iters = static_cast<unsigned>(std::atoi(Argv[I + 1]));
    else if (std::strcmp(Argv[I], "--archive") == 0)
      ArchivePath = Argv[I + 1];
  }
  if (Iters == 0)
    Iters = 1;

  // One mid-size paper workload, traced once; every mode compacts the
  // same events.
  WorkloadProfile Profile = paperProfiles()[1];
  std::fprintf(stderr, "[bench] building %s...\n", Profile.Name.c_str());
  SyntheticProgram Program = generateProgram(Profile);
  CollectingSink Sink(Profile.FunctionCount);
  runSyntheticProgram(Program, Sink);
  RawTrace Trace = Sink.take();

  // Mode 1: recorder off — the baseline the others are judged against.
  bool TracingBefore = obs::tracingEnabled();
  obs::setTracingEnabled(false);
  runPipeline(Trace, Jobs); // warm-up
  double BaselineMs = timeIterations(Trace, Jobs, Iters, false);
  Telemetry.checkpoint("baseline");

  // Mode 2: flight recorder on, nothing consumes it.
  obs::setTracingEnabled(true);
  double TracedMs = timeIterations(Trace, Jobs, Iters, false);
  Telemetry.checkpoint("traced");
  obs::setTracingEnabled(TracingBefore);

  // Mode 3: recorder plus self-profiling — incremental drains during the
  // run, archive + sidecar written (and the Chrome-JSON equivalent
  // measured) at finish.
  obs::SelfProfileConfig Config;
  Config.ArchivePath = ArchivePath;
  Config.CompareTraceJson = true;
  obs::enableSelfProfile(Config);
  double SelfProfMs = timeIterations(Trace, Jobs, Iters, true);
  obs::SelfProfileStats Stats;
  std::string Error;
  if (!obs::finishSelfProfile(&Stats, &Error)) {
    std::fprintf(stderr, "[bench] self-profile failed: %s\n", Error.c_str());
    return 1;
  }
  Telemetry.checkpoint("selfprof");

  auto Overhead = [&](double Ms) {
    return formatDouble((Ms / BaselineMs - 1.0) * 100.0, 1) + "%";
  };
  TablePrinter Table("Self-profiling overhead (full pipeline, " +
                     Profile.Name + ", " + std::to_string(Iters) +
                     " iters)");
  Table.addRow({"Mode", "ms/iter", "overhead"});
  Table.addRow({"recorder off", formatDouble(BaselineMs, 2), "-"});
  Table.addRow({"recorder on", formatDouble(TracedMs, 2),
                Overhead(TracedMs)});
  Table.addRow({"recorder + self-profile", formatDouble(SelfProfMs, 2),
                Overhead(SelfProfMs)});
  Table.print();

  double Ratio = Stats.ArchiveBytes == 0
                     ? 0.0
                     : static_cast<double>(Stats.TraceJsonBytes) /
                           static_cast<double>(Stats.ArchiveBytes);
  TablePrinter Sizes("Self-profile storage: TWPP archive vs Chrome-trace "
                     "JSON of the same execution");
  Sizes.addRow({"Representation", "bytes", "ratio"});
  Sizes.addRow({"chrome-trace json",
                std::to_string(Stats.TraceJsonBytes), "1.0x"});
  Sizes.addRow({"twpp archive", std::to_string(Stats.ArchiveBytes),
                formatFactor(Ratio)});
  Sizes.print();
  std::fprintf(stderr,
               "[bench] selfprof: %llu spans, %llu events, %llu functions, "
               "%llu records dropped, archive %s\n",
               (unsigned long long)Stats.Spans,
               (unsigned long long)Stats.Events,
               (unsigned long long)Stats.Functions,
               (unsigned long long)Stats.RecordsDropped, ArchivePath.c_str());
  return 0;
}
