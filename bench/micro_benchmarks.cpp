//===- bench/micro_benchmarks.cpp - google-benchmark micro suite -----------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Microbenchmarks of the primitives the experiments stand on: the series
// codec, timestamp-set operations (the per-step cost of demand-driven
// query propagation), LZW, Sequitur inference, and the full pipeline.
//
//===----------------------------------------------------------------------===//

#include "sequitur/Sequitur.h"
#include "support/ByteStream.h"
#include "support/LZW.h"
#include "support/Random.h"
#include "support/Varint.h"
#include "wpp/TimestampSet.h"
#include "wpp/Twpp.h"

#include <benchmark/benchmark.h>

using namespace twpp;

namespace {

std::vector<Timestamp> loopTimestamps(size_t Count, uint32_t Step) {
  std::vector<Timestamp> Out;
  Out.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Out.push_back(static_cast<Timestamp>(1 + I * Step));
  return Out;
}

void BM_SeriesEncode(benchmark::State &State) {
  std::vector<Timestamp> List = loopTimestamps(State.range(0), 5);
  for (auto _ : State) {
    TimestampSet Set = TimestampSet::fromSorted(List);
    benchmark::DoNotOptimize(Set.encodeSigned());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_SeriesEncode)->Arg(100)->Arg(10000);

/// A varint stream shaped like a real series block: mostly small deltas
/// with occasional large anchors, the distribution decodeSeries sees.
std::vector<uint8_t> varintStream(size_t Count) {
  Rng R(407);
  ByteWriter Writer;
  for (size_t I = 0; I < Count; ++I) {
    if (R.nextBool(0.05))
      Writer.writeVarUint(R.nextBelow(uint64_t(1) << 40));
    else
      Writer.writeVarUint(R.nextBelow(1 << 10));
  }
  return Writer.take();
}

void BM_VarintDecodeScalar(benchmark::State &State) {
  std::vector<uint8_t> Stream = varintStream(State.range(0));
  for (auto _ : State) {
    const uint8_t *P = Stream.data();
    const uint8_t *End = P + Stream.size();
    uint64_t Sum = 0;
    while (P != End) {
      uint64_t Value = 0;
      size_t Len = varint::decodeVarUintScalar(P, End, Value);
      if (!Len)
        break;
      Sum += Value;
      P += Len;
    }
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
  State.SetBytesProcessed(State.iterations() * Stream.size());
}
BENCHMARK(BM_VarintDecodeScalar)->Arg(1 << 10)->Arg(1 << 16);

void BM_VarintDecodeSwar(benchmark::State &State) {
  std::vector<uint8_t> Stream = varintStream(State.range(0));
  for (auto _ : State) {
    const uint8_t *P = Stream.data();
    const uint8_t *End = P + Stream.size();
    uint64_t Sum = 0;
    while (P != End) {
      uint64_t Value = 0;
      size_t Len = varint::decodeVarUintSwar(P, End, Value);
      if (!Len)
        break;
      Sum += Value;
      P += Len;
    }
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
  State.SetBytesProcessed(State.iterations() * Stream.size());
}
BENCHMARK(BM_VarintDecodeSwar)->Arg(1 << 10)->Arg(1 << 16);

void BM_TimestampShift(benchmark::State &State) {
  // One backward propagation step over a compacted vector: the paper's
  // (2:20:2) -> (1:19:2) example scaled up. Run count stays tiny no
  // matter how many instances the set holds.
  TimestampSet Set = TimestampSet::fromRun(2, 2 + 10 * State.range(0), 10);
  for (auto _ : State)
    benchmark::DoNotOptimize(Set.shifted(-1));
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_TimestampShift)->Arg(100)->Arg(100000);

void BM_TimestampIntersectAligned(benchmark::State &State) {
  TimestampSet A = TimestampSet::fromRun(1, State.range(0), 1);
  TimestampSet B = TimestampSet::fromRun(1, State.range(0), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.intersect(B));
}
BENCHMARK(BM_TimestampIntersectAligned)->Arg(10000);

void BM_TimestampIntersectMisaligned(benchmark::State &State) {
  TimestampSet A = TimestampSet::fromRun(1, 1 + 2 * State.range(0), 2);
  TimestampSet B = TimestampSet::fromRun(1, 1 + 3 * State.range(0), 3);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.intersect(B));
}
BENCHMARK(BM_TimestampIntersectMisaligned)->Arg(10000);

void BM_LzwRoundTrip(benchmark::State &State) {
  Rng R(7);
  std::vector<uint8_t> Input;
  for (int64_t I = 0; I < State.range(0); ++I)
    Input.push_back(static_cast<uint8_t>(R.nextBelow(16)));
  for (auto _ : State) {
    std::vector<uint8_t> Out;
    lzwDecompress(lzwCompress(Input), Out);
    benchmark::DoNotOptimize(Out);
  }
  State.SetBytesProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_LzwRoundTrip)->Arg(1 << 14);

void BM_SequiturAppend(benchmark::State &State) {
  Rng R(11);
  std::vector<uint64_t> Input;
  for (int64_t I = 0; I < State.range(0); ++I)
    Input.push_back(R.nextBelow(8));
  for (auto _ : State) {
    SequiturBuilder Builder;
    for (uint64_t T : Input)
      Builder.append(T);
    benchmark::DoNotOptimize(Builder.ruleCount());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_SequiturAppend)->Arg(1 << 13);

void BM_FullPipeline(benchmark::State &State) {
  // A loopy two-function trace of ~State.range(0) block events.
  RawTrace Trace;
  Trace.FunctionCount = 2;
  Trace.Events.push_back(TraceEvent::enter(0));
  int64_t Budget = State.range(0);
  while (Budget > 0) {
    Trace.Events.push_back(TraceEvent::block(1));
    Trace.Events.push_back(TraceEvent::enter(1));
    for (BlockId B = 1; B <= 6; ++B) {
      Trace.Events.push_back(TraceEvent::block(B));
      --Budget;
    }
    Trace.Events.push_back(TraceEvent::exit());
    Trace.Events.push_back(TraceEvent::block(2));
    Budget -= 3;
  }
  Trace.Events.push_back(TraceEvent::exit());
  for (auto _ : State) {
    TwppWpp Compacted = compactWpp(Trace);
    benchmark::DoNotOptimize(Compacted.Functions.size());
  }
  State.SetItemsProcessed(State.iterations() * Trace.Events.size());
}
BENCHMARK(BM_FullPipeline)->Arg(1 << 14);

} // namespace

BENCHMARK_MAIN();
