//===- bench/BenchCommon.h - Shared experiment plumbing ---------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure reproduction binaries: each bench
/// builds the five paper workloads, runs the full compaction pipeline once
/// and prints its table through TablePrinter so outputs are uniform.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_BENCH_BENCHCOMMON_H
#define TWPP_BENCH_BENCHCOMMON_H

#include "obs/Export.h"
#include "obs/Memory.h"
#include "obs/Metrics.h"
#include "obs/Names.h"
#include "obs/SelfProfile.h"
#include "obs/Trace.h"
#include "support/Parallel.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "workloads/Workload.h"
#include "wpp/Sizes.h"
#include "wpp/Twpp.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace twpp::bench {

/// Opt-in telemetry for the table/figure binaries. Metric collection is
/// activated by `--metrics-out <path>` on the command line or the
/// TWPP_METRICS_OUT environment variable; event tracing by `--trace-out
/// <path>` or TWPP_TRACE_OUT; self-profiling (the bench's own execution
/// compacted into a TWPP archive, obs/SelfProfile.h) by the
/// TWPP_SELF_PROFILE environment variable. Inert (and free) otherwise.
///
/// Each checkpoint() emits one JSON-lines block labelled
/// "<bench>/<label>" and resets the registry, so per-profile metric
/// values line up with the table rows the bench prints. With no
/// checkpoints the destructor dumps a single block for the whole run.
/// Checkpoints also drop an instant event into the trace, so the
/// timeline shows where each profile's work starts.
class BenchTelemetry {
public:
  BenchTelemetry(int Argc, char **Argv, std::string BenchName)
      : Bench(std::move(BenchName)) {
    for (int I = 1; I + 1 < Argc; ++I) {
      if (std::strcmp(Argv[I], "--metrics-out") == 0)
        OutPath = Argv[I + 1];
      else if (std::strcmp(Argv[I], "--trace-out") == 0)
        TracePath = Argv[I + 1];
    }
    if (OutPath.empty())
      if (const char *Env = std::getenv("TWPP_METRICS_OUT"))
        OutPath = Env;
    if (TracePath.empty())
      if (const char *Env = std::getenv("TWPP_TRACE_OUT"))
        TracePath = Env;
    if (!TracePath.empty()) {
      obs::setTracingEnabled(true);
      obs::setCurrentThreadName("main");
    }
    if (obs::maybeEnableSelfProfileFromEnv())
      obs::setCurrentThreadName("main");
    if (active()) {
      // Memory telemetry rides along with either sink: the tracker feeds
      // the per-stage mem.tracked_* figures and the poller samples RSS
      // between checkpoints (and emits counter tracks into the trace).
      obs::setMemTrackingEnabled(true);
      obs::memTracker().reset();
      obs::startMemPoller();
    }
    if (OutPath.empty())
      return;
    obs::setMetricsEnabled(true);
    obs::names::registerCanonicalMetrics(obs::metrics());
    obs::metrics().reset();
  }

  ~BenchTelemetry() {
    // Finish any env-driven self-profile first (no-op if the bench
    // already finished it) so its selfprof.* metrics can land in the
    // final export below.
    std::string SelfError;
    if (obs::selfProfiler() && !obs::finishSelfProfile(nullptr, &SelfError))
      std::fprintf(stderr, "[bench] cannot write self-profile: %s\n",
                   SelfError.c_str());
    if (active())
      obs::stopMemPoller();
    if (!TracePath.empty()) {
      if (obs::writeTraceJsonFile(TracePath, obs::traceRecorder()))
        std::fprintf(stderr, "[bench] wrote trace to %s\n",
                     TracePath.c_str());
      else
        std::fprintf(stderr, "[bench] cannot write trace to %s\n",
                     TracePath.c_str());
    }
    if (OutPath.empty())
      return;
    if (Lines.empty()) {
      obs::publishMemMetrics(obs::metrics());
      Lines = obs::exportMetricsJsonLines(obs::metrics(), Bench);
    }
    if (std::FILE *F = std::fopen(OutPath.c_str(), "w")) {
      std::fwrite(Lines.data(), 1, Lines.size(), F);
      std::fclose(F);
      std::fprintf(stderr, "[bench] wrote metrics to %s\n", OutPath.c_str());
    } else {
      std::fprintf(stderr, "[bench] cannot write metrics to %s\n",
                   OutPath.c_str());
    }
  }

  BenchTelemetry(const BenchTelemetry &) = delete;
  BenchTelemetry &operator=(const BenchTelemetry &) = delete;

  bool active() const { return !OutPath.empty() || !TracePath.empty(); }

  /// Flushes everything collected since the previous checkpoint under
  /// the label "<bench>/<label>" and zeroes the registry. The memory
  /// gauges (mem.peak_bytes, mem.tracked_peak_bytes, ...) are published
  /// just before the flush and both the poller's RSS window and the
  /// allocation tracker are reset, so each labelled block carries that
  /// stage's own peaks rather than a run-wide high-water mark.
  void checkpoint(const std::string &Label) {
    obs::traceInstant(Label);
    // Keep the self-profiler's buffers ahead of ring wraparound; cheap
    // (one cursor sweep) and inert when self-profiling is off.
    if (obs::SelfProfiler *P = obs::selfProfiler())
      P->drain();
    if (OutPath.empty())
      return;
    obs::publishMemMetrics(obs::metrics());
    obs::memTracker().reset();
    Lines += obs::exportMetricsJsonLines(obs::metrics(), Bench + "/" + Label);
    obs::metrics().reset();
  }

private:
  std::string Bench;
  std::string OutPath;
  std::string TracePath;
  std::string Lines;
};

/// Parses the `--jobs N` flag shared by the bench binaries (0 = one
/// worker per hardware thread; absent = serial, matching the paper runs).
inline ParallelConfig parseParallelConfig(int Argc, char **Argv) {
  ParallelConfig Config;
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--jobs") == 0)
      Config.Jobs = static_cast<unsigned>(std::atoi(Argv[I + 1]));
  return Config;
}

/// Everything a table needs about one benchmark run.
struct ProfileData {
  WorkloadProfile Profile;
  SyntheticProgram Program;
  RawTrace Trace;
  PartitionedWpp Partitioned;
  DbbWpp Dbb;
  TwppWpp Twpp;
  OwppSizes Owpp;
  StageSizes Stages;
  /// Wall time of the compaction stages (partition + DBB + TWPP).
  double CompactionMs = 0;
};

inline ProfileData buildProfileData(const WorkloadProfile &Profile,
                                    const ParallelConfig &Config = {}) {
  ProfileData Data;
  Data.Profile = Profile;
  Data.Program = generateProgram(Profile);
  CollectingSink Sink(Profile.FunctionCount);
  runSyntheticProgram(Data.Program, Sink);
  Data.Trace = Sink.take();
  Stopwatch Compaction;
  Data.Partitioned = partitionWpp(Data.Trace);
  Data.Dbb = applyDbbCompaction(Data.Partitioned, Config);
  Data.Twpp = convertToTwpp(Data.Dbb, Config);
  Data.CompactionMs = Compaction.elapsedUs() / 1000.0;
  Data.Owpp = measureOwpp(Data.Partitioned);
  Data.Stages = measureStages(Data.Partitioned, Data.Dbb, Data.Twpp);
  return Data;
}

/// Builds all five paper profiles, printing progress to stderr. With a
/// telemetry collector, each profile becomes one labelled checkpoint so
/// its metrics can be compared against that profile's table row.
inline std::vector<ProfileData>
buildAllProfiles(BenchTelemetry *Telemetry = nullptr,
                 const ParallelConfig &Config = {}) {
  std::vector<ProfileData> All;
  for (const WorkloadProfile &Profile : paperProfiles()) {
    std::fprintf(stderr, "[bench] building %s...\n", Profile.Name.c_str());
    All.push_back(buildProfileData(Profile, Config));
    if (Telemetry)
      Telemetry->checkpoint(Profile.Name);
  }
  return All;
}

/// KB with one decimal, the granularity the paper's MB columns imply.
inline std::string kb(uint64_t Bytes) {
  return formatDouble(Bytes / 1024.0, 1);
}

} // namespace twpp::bench

#endif // TWPP_BENCH_BENCHCOMMON_H
