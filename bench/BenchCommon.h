//===- bench/BenchCommon.h - Shared experiment plumbing ---------*- C++ -*-===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure reproduction binaries: each bench
/// builds the five paper workloads, runs the full compaction pipeline once
/// and prints its table through TablePrinter so outputs are uniform.
///
//===----------------------------------------------------------------------===//

#ifndef TWPP_BENCH_BENCHCOMMON_H
#define TWPP_BENCH_BENCHCOMMON_H

#include "support/Stats.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "workloads/Workload.h"
#include "wpp/Sizes.h"
#include "wpp/Twpp.h"

#include <cstdio>
#include <string>
#include <vector>

namespace twpp::bench {

/// Everything a table needs about one benchmark run.
struct ProfileData {
  WorkloadProfile Profile;
  SyntheticProgram Program;
  RawTrace Trace;
  PartitionedWpp Partitioned;
  DbbWpp Dbb;
  TwppWpp Twpp;
  OwppSizes Owpp;
  StageSizes Stages;
};

inline ProfileData buildProfileData(const WorkloadProfile &Profile) {
  ProfileData Data;
  Data.Profile = Profile;
  Data.Program = generateProgram(Profile);
  CollectingSink Sink(Profile.FunctionCount);
  runSyntheticProgram(Data.Program, Sink);
  Data.Trace = Sink.take();
  Data.Partitioned = partitionWpp(Data.Trace);
  Data.Dbb = applyDbbCompaction(Data.Partitioned);
  Data.Twpp = convertToTwpp(Data.Dbb);
  Data.Owpp = measureOwpp(Data.Partitioned);
  Data.Stages = measureStages(Data.Partitioned, Data.Dbb, Data.Twpp);
  return Data;
}

/// Builds all five paper profiles, printing progress to stderr.
inline std::vector<ProfileData> buildAllProfiles() {
  std::vector<ProfileData> All;
  for (const WorkloadProfile &Profile : paperProfiles()) {
    std::fprintf(stderr, "[bench] building %s...\n", Profile.Name.c_str());
    All.push_back(buildProfileData(Profile));
  }
  return All;
}

/// KB with one decimal, the granularity the paper's MB columns imply.
inline std::string kb(uint64_t Bytes) {
  return formatDouble(Bytes / 1024.0, 1);
}

} // namespace twpp::bench

#endif // TWPP_BENCH_BENCHCOMMON_H
