//===- bench/fig9_load_redundancy.cpp - Paper Figure 9 ---------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Figure 9: profile-guided optimization — detecting dynamic load
// redundancy with demand-driven query propagation over the timestamp
// annotated dynamic CFG. The loop runs 100 iterations; 1_Load executes
// 100 times, 6_Store 40 times, 4_Load 60 times. Edge frequencies alone
// cannot tell how often 4_Load is redundant; timestamp propagation shows
// it is redundant on every execution (count 60, degree 100%) using only
// a handful of queries (the paper reports 6).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "dataflow/AnnotatedCfg.h"
#include "dataflow/Query.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace twpp;

int main(int Argc, char **Argv) {
  bench::BenchTelemetry Telemetry(Argc, Argv, "fig9_load_redundancy");
  // (1.2.3.4.5)^30 (1.2.7.4.5)^30 (1.6.7.5)^40, matching the stated
  // frequencies (the figure's own exponents are inconsistent with them).
  std::vector<BlockId> Sequence;
  for (int I = 0; I < 30; ++I)
    for (BlockId B : {1, 2, 3, 4, 5})
      Sequence.push_back(B);
  for (int I = 0; I < 30; ++I)
    for (BlockId B : {1, 2, 7, 4, 5})
      Sequence.push_back(B);
  for (int I = 0; I < 40; ++I)
    for (BlockId B : {1, 6, 7, 5})
      Sequence.push_back(B);

  auto Effect = [](BlockId Block) {
    if (Block == 1)
      return BlockEffect::Gen; // 1_Load
    if (Block == 6)
      return BlockEffect::Kill; // 6_Store
    return BlockEffect::Transparent;
  };

  AnnotatedDynamicCfg Cfg = buildAnnotatedCfgFromSequence(Sequence);

  TablePrinter Annot("Figure 9: timestamp annotations (compacted)");
  Annot.addRow({"Block", "Timestamps", "Executions"});
  for (const AnnotatedNode &Node : Cfg.Nodes) {
    std::string Series;
    for (int64_t V : Node.Times.encodeSigned())
      Series += (Series.empty() ? "" : " ") + std::to_string(V);
    Annot.addRow({std::to_string(Node.Head), Series,
                  std::to_string(Node.Times.count())});
  }
  Annot.print();

  FactFrequency Freq = factFrequency(Cfg, 4, Effect);
  TablePrinter Result("Figure 9: dynamic load redundancy of 4_Load");
  Result.addRow({"Metric", "Value", "Paper"});
  Result.addRow({"4_Load executions", std::to_string(Freq.Total), "60"});
  Result.addRow({"Redundant executions", std::to_string(Freq.Holds), "60"});
  Result.addRow({"Degree of redundancy",
                 std::to_string(static_cast<int>(100 * Freq.ratio())) + "%",
                 "100%"});
  Result.addRow({"Queries generated",
                 std::to_string(Freq.QueriesGenerated), "6"});
  Result.print();
  return 0;
}
