//===- bench/ablation_lzw.cpp - DCG compression ablation -------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Ablation for the paper's choice of LZW over the serialized dynamic call
// graph ("Compacting the DCG", Section 2): raw serialized size vs
// LZW-compressed size per benchmark.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/LZW.h"

using namespace twpp;
using namespace twpp::bench;

int main(int Argc, char **Argv) {
  BenchTelemetry Telemetry(Argc, Argv, "ablation_lzw");
  TablePrinter Table("Ablation: dynamic call graph storage");
  Table.addRow({"Program", "Calls", "Raw DCG (KB)", "LZW DCG (KB)",
                "Ratio"});
  for (const ProfileData &Data : buildAllProfiles(&Telemetry)) {
    std::vector<uint8_t> Raw = encodeDcg(Data.Twpp.Dcg);
    std::vector<uint8_t> Compressed = lzwCompress(Raw);
    Table.addRow({Data.Profile.Name,
                  std::to_string(Data.Trace.callCount()),
                  kb(Raw.size()), kb(Compressed.size()),
                  formatFactor(static_cast<double>(Raw.size()) /
                               static_cast<double>(Compressed.size()))});
  }
  Table.print();
  return 0;
}
