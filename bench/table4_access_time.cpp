//===- bench/table4_access_time.cpp - Paper Table 4 ------------------------===//
//
// Part of the TWPP reproduction of Zhang & Gupta, PLDI 2001.
//
// Table 4: time to extract one function's path traces from (U) the
// uncompacted WPP file — a full scan of the linear trace — versus (C) the
// compacted TWPP archive — an index row plus one block read. The paper
// reports >3 orders of magnitude speedup on average; absolute times
// differ on modern hardware but the asymmetric costs are the same.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/FileIO.h"
#include "trace/UncompactedFile.h"
#include "wpp/Archive.h"

#include <algorithm>
#include <cstdio>

using namespace twpp;
using namespace twpp::bench;

namespace {

/// Functions actually called in the run (extraction of never-called
/// functions is trivially fast and would skew the averages).
std::vector<FunctionId> calledFunctions(const ProfileData &Data) {
  std::vector<FunctionId> Out;
  for (FunctionId F = 0; F < Data.Partitioned.Functions.size(); ++F)
    if (Data.Partitioned.Functions[F].CallCount > 0)
      Out.push_back(F);
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchTelemetry Telemetry(Argc, Argv, "table4_access_time");
  TablePrinter Table(
      "Table 4: per-function extraction times, uncompacted (U) vs "
      "compacted archive (C)");
  Table.addRow({"Program", "avg.U (ms)", "max.U (ms)", "avg.C (ms)",
                "max.C (ms)", "Speedup (avg)"});

  for (const ProfileData &Data : buildAllProfiles(&Telemetry)) {
    std::string OwppPath = "/tmp/twpp_bench_" + Data.Profile.Name + ".owpp";
    std::string ArchivePath =
        "/tmp/twpp_bench_" + Data.Profile.Name + ".twpp";
    if (!writeUncompactedTraceFile(OwppPath, Data.Trace) ||
        !writeArchiveFile(ArchivePath, Data.Twpp)) {
      std::fprintf(stderr, "failed to write %s files\n",
                   Data.Profile.Name.c_str());
      return 1;
    }

    std::vector<FunctionId> Functions = calledFunctions(Data);
    // The uncompacted scan costs the same regardless of the function, so
    // a sample of functions gives a faithful U average at tolerable cost.
    std::vector<FunctionId> Sample;
    for (size_t I = 0; I < Functions.size() && Sample.size() < 10;
         I += std::max<size_t>(1, Functions.size() / 10))
      Sample.push_back(Functions[I]);

    RunningStats U;
    for (FunctionId F : Sample) {
      Stopwatch Sw;
      std::vector<std::vector<BlockId>> Traces;
      extractFunctionTracesFromFile(OwppPath, F, Traces);
      U.add(Sw.elapsedMs());
    }

    ArchiveReader Reader;
    if (!Reader.open(ArchivePath)) {
      std::fprintf(stderr, "failed to open archive\n");
      return 1;
    }
    RunningStats C;
    for (FunctionId F : Functions) {
      Stopwatch Sw;
      FunctionPathTraces Out;
      // Re-open per query so C pays its full cost (index + block read),
      // mirroring the paper's standalone extraction scenario.
      ArchiveReader Fresh;
      Fresh.open(ArchivePath);
      Fresh.extractFunctionPathTraces(F, Out);
      C.add(Sw.elapsedMs());
    }

    Table.addRow({Data.Profile.Name, formatDouble(U.mean(), 2),
                  formatDouble(U.max(), 2), formatDouble(C.mean(), 3),
                  formatDouble(C.max(), 3),
                  formatDouble(U.mean() / std::max(C.mean(), 1e-9), 0)});
    std::remove(OwppPath.c_str());
    std::remove(ArchivePath.c_str());
  }
  Table.print();
  return 0;
}
